// Back-compatible driver entry points over the v2 engine: lint_text builds
// a two-file project model (file + synthesized companion), lint_tree builds
// the repo-wide model once and fans per-file rule passes out over the
// ThreadPool with a deterministic merge.
#include "lts_lint/linter.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lts_lint/rules.hpp"
#include "util/thread_pool.hpp"

namespace lts::lint {
namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::vector<Diagnostic> lint_text(const std::string& rel_path,
                                  const std::string& content,
                                  const std::string& companion,
                                  const Options& opts) {
  std::vector<std::pair<std::string, std::string>> sources;
  sources.emplace_back(rel_path, content);
  if (!companion.empty() &&
      (ends_with(rel_path, ".cpp") || ends_with(rel_path, ".cc"))) {
    // The companion is addressable as the sibling header, which is exactly
    // where ProjectModel::companion_of falls back to.
    std::string header = rel_path;
    header.erase(header.rfind('.'));
    header += ".hpp";
    sources.emplace_back(std::move(header), companion);
  }
  const ProjectModel project =
      ProjectModel::from_files(sources, {"src", "tools"}, waiver_tokens());
  return run_rules(project.files.at(rel_path), project,
                   opts.check_unused_waivers);
}

std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const Options& opts) {
  namespace fs = std::filesystem;
  const std::vector<std::string> kDirs = {"src", "tools", "bench", "tests"};
  const std::vector<std::string> kExts = {".cpp", ".hpp", ".h", ".cc"};

  std::vector<std::string> files;
  for (const std::string& dir : kDirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (rel.find("lint_fixtures") != std::string::npos) continue;
      if (rel.find("build") == 0) continue;
      const std::string ext = entry.path().extension().string();
      if (std::find(kExts.begin(), kExts.end(), ext) == kExts.end()) continue;
      files.push_back(rel);
    }
  }
  std::sort(files.begin(), files.end());

  // The content cache: every file — header or source — is read and parsed
  // exactly once here; companion lookups hit the model.
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const std::string& rel : files) {
    sources.emplace_back(rel, read_file(fs::path(root) / rel));
  }

  std::vector<std::string> roots = {"src", "tools"};
  for (const char* cc :
       {"build/compile_commands.json", "compile_commands.json"}) {
    const fs::path cc_path = fs::path(root) / cc;
    if (fs::exists(cc_path)) {
      std::error_code ec;
      const fs::path abs_root = fs::canonical(root, ec);
      roots = include_roots_from_compile_commands(
          read_file(cc_path),
          ec ? std::string(root) : abs_root.generic_string());
      break;
    }
  }

  const ProjectModel project =
      ProjectModel::from_files(sources, roots, waiver_tokens());

  // Per-file passes are independent (each writes only its own slot), so the
  // merge below is deterministic for any worker count.
  std::vector<std::vector<Diagnostic>> per_file(files.size());
  auto run_one = [&](std::size_t i) {
    per_file[i] = run_rules(project.files.at(files[i]), project,
                            opts.check_unused_waivers);
  };
  if (opts.jobs == 1) {
    for (std::size_t i = 0; i < files.size(); ++i) run_one(i);
  } else if (opts.jobs == 0) {
    ThreadPool::global().parallel_for(files.size(), run_one);
  } else {
    ThreadPool pool(opts.jobs);
    pool.parallel_for(files.size(), run_one);
  }

  std::vector<Diagnostic> all;
  for (std::vector<Diagnostic>& diags : per_file) {
    all.insert(all.end(), diags.begin(), diags.end());
  }
  return all;
}

}  // namespace lts::lint
