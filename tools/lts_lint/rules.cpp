#include "lts_lint/rules.hpp"

#include <algorithm>
#include <tuple>

namespace lts::lint {

void RuleContext::report(std::size_t line, const std::string& rule,
                         const std::string& message) {
  for (Waiver& w : waivers) {
    if (w.rule == rule && w.target == line) {
      w.used = true;
      return;
    }
  }
  diags.push_back({file->path, line, rule, message});
}

bool RuleContext::consume_token(const std::string& token, std::size_t line) {
  for (Waiver& w : waivers) {
    if (w.token == token && w.target == line) {
      w.used = true;
      return true;
    }
  }
  return false;
}

const std::vector<Rule>& rule_registry() {
  static const std::vector<Rule> rules = {
      {{"R1", "nondeterminism-sources",
        "no nondeterminism sources (random_device, rand, wall clocks, "
        "getenv) in src/ outside the obs/CLI layers",
        "Identical seeds must yield identical telemetry traces and labels; "
        "any ambient entropy or wall-clock read in simulation/decision code "
        "breaks golden replay and silently skews training data.",
        "auto seed = std::random_device{}();",
        "nondeterminism-ok"},
       check_determinism},
      {{"R2", "unordered-containers",
        "no std::unordered_map/set in determinism-critical dirs (simcore, "
        "net, core, cluster, spark, tenant), including iteration over a "
        "companion header's unordered members",
        "Hash-iteration order is implementation-defined; if it reaches "
        "event dispatch, scheduling decisions, or telemetry output, replay "
        "diverges across standard libraries and ASLR runs.",
        "for (const auto& [id, flow] : flows_by_id_)  // unordered_map",
        "ordered-ok"},
       check_ordering},
      {{"R3", "obs-hot-path",
        "obs instrumentation in hot paths (simcore, net) must follow the "
        "static-Metrics-struct / record_* / cached-enabled-flag pattern",
        "Instrument registration does a registry lookup under a mutex; "
        "doing it per event serializes the simulator. Mutations belong in "
        "an outlined record_* function gated on the cached enabled flag.",
        "obs::counter(\"events\").inc();  // inside the dispatch loop",
        "obs-gated"},
       check_obs},
      {{"R4", "concurrency-hygiene",
        "raw std::thread/detach() outside src/util/thread_pool; "
        "parallel_for lambdas with by-reference captures must declare a "
        "sharing discipline",
        "All parallelism flows through ThreadPool so worker count stays a "
        "pure performance knob. A [&] capture without a declared strategy "
        "(mutex, atomic, partitioned, site-partitioned) is a data race "
        "waiting for a reviewer to miss it.",
        "pool.parallel_for(n, [&](std::size_t i) { total += x[i]; });",
        "shared-guarded"},
       check_concurrency},
      {{"R5", "header-hygiene",
        "headers carry #pragma once (or an include guard) and no "
        "file-scope `using namespace`",
        "A header without a guard breaks the one-definition rule the first "
        "time two translation units meet it; `using namespace` leaks into "
        "every includer.",
        "using namespace std;  // at file scope in a .hpp", ""},
       check_hygiene},
      {{"R6", "epoch-protocol",
        "public mutators of epoch-guarded state (Tsdb series, exporter "
        "shaping knobs, FlowManager flow/link state) must bump the epoch "
        "or mark the rate cache dirty",
        "The batched serving path caches feature snapshots keyed on "
        "Tsdb::epoch(), and the max-min solver caches rates behind "
        "FlowManager's dirty flag. A public mutation that skips the bump "
        "serves stale predictions or stale rates -- the exact bug class "
        "PR 6/7's audit tests catch dynamically, checked statically here.",
        "void Tsdb::drop_series(...) { series_.erase(it); }  // no ++epoch_",
        "epoch-ok"},
       check_epoch},
      {{"R7", "fp-reduction-order",
        "no std::reduce/transform_reduce, FP accumulation inside "
        "parallel_for lambdas, or std::accumulate over unordered "
        "iteration in determinism-critical dirs",
        "Floating-point addition is not associative; any reduction whose "
        "operand order depends on thread interleaving or hash order makes "
        "rates and features differ across runs at the ULP level, which the "
        "byte-identical golden replay then rejects.",
        "double total = std::reduce(par_unseq, v.begin(), v.end());",
        "fp-order-ok"},
       check_fp_order},
      {{"R8", "hot-path-allocation",
        "no new/make_unique/make_shared/std::function construction or "
        "un-reserved push_back loops inside declared hot-path functions "
        "(recompute_rates*, fill_flows, hierarchical_fill, predict_batch, "
        "schedule_many*, schedule_batch, Engine::step/run)",
        "The scale arc's budgets (rate solve at 100k flows, batched "
        "serving throughput) assume the steady state allocates nothing; "
        "an allocator call or growth-doubling loop inside these functions "
        "turns O(1) amortized costs into latency spikes under load.",
        "out.push_back(rate);  // in a loop, no out.reserve(n) above",
        "alloc-ok"},
       check_alloc},
  };
  return rules;
}

const std::map<std::string, std::string>& waiver_tokens() {
  static const std::map<std::string, std::string> tokens = [] {
    std::map<std::string, std::string> t;
    for (const Rule& r : rule_registry()) {
      if (!r.info.waiver.empty()) t.emplace(r.info.waiver, r.info.id);
    }
    // R4 accepts two tokens: thread-ok for raw-thread escapes,
    // shared-guarded for declared sharing disciplines.
    t.emplace("thread-ok", "R4");
    return t;
  }();
  return tokens;
}

const Rule* find_rule(const std::string& id_or_name) {
  for (const Rule& r : rule_registry()) {
    if (r.info.id == id_or_name || r.info.name == id_or_name) return &r;
  }
  return nullptr;
}

std::vector<Diagnostic> run_rules(const FileModel& file,
                                  const ProjectModel& project,
                                  bool check_unused_waivers) {
  RuleContext ctx;
  ctx.file = &file;
  ctx.project = &project;
  ctx.companion = project.companion_of(file.path);
  ctx.waivers = file.waivers;
  ctx.diags = file.waiver_diags;

  for (const Rule& r : rule_registry()) {
    r.check(ctx);
  }

  if (check_unused_waivers) {
    for (const Waiver& w : ctx.waivers) {
      if (!w.used) {
        ctx.diags.push_back(
            {file.path, w.line, "waiver-unused",
             "waiver '" + w.token +
                 "' suppresses nothing: remove it (stale waivers hide "
                 "future violations)"});
      }
    }
  }

  std::sort(ctx.diags.begin(), ctx.diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return ctx.diags;
}

}  // namespace lts::lint
