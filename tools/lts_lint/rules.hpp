// lts_lint rule registry: every rule is a (metadata, check) pair over the
// shared project model, so the CLI's --list-rules/--explain output, the
// SARIF rule table, and the waiver-token validation all come from one
// source of truth.
//
//   R1  nondeterminism sources in sim/decision code
//   R2  unordered containers in determinism-critical dirs (+ cross-file
//       iteration over a companion header's unordered members)
//   R3  obs instrumentation pattern in hot paths
//   R4  concurrency hygiene (raw threads, detach, unguarded [&] captures)
//   R5  header hygiene (#pragma once, using namespace)
//   R6  epoch/invalidation protocol: public mutators of epoch-guarded
//       state (Tsdb series, exporter shaping knobs, FlowManager flow/link
//       state) must bump the epoch or mark the rate cache dirty
//   R7  floating-point reduction order: std::reduce/transform_reduce,
//       FP accumulation inside parallel_for lambdas, and std::accumulate
//       over unordered iteration in determinism-critical dirs
//   R8  hot-path allocation: new/make_unique/make_shared/std::function
//       construction and un-reserved push_back loops inside the declared
//       hot-path function list
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lts_lint/model.hpp"

namespace lts::lint {

/// Metadata driving --list-rules, --explain, and the SARIF rule table.
struct RuleInfo {
  std::string id;         // "R1".."R8"
  std::string name;       // short kebab-case handle
  std::string summary;    // one line, for --list-rules and SARIF
  std::string rationale;  // why the invariant matters (--explain)
  std::string example;    // an example violating line (--explain)
  std::string waiver;     // waiver token, "" when the rule is not waivable
};

/// Per-file rule pass state. Waivers are copied out of the FileModel so a
/// pass can mark them used without mutating the shared project model.
struct RuleContext {
  const FileModel* file = nullptr;
  const ProjectModel* project = nullptr;
  const FileModel* companion = nullptr;  // paired header, may be null
  std::vector<Waiver> waivers;
  std::vector<Diagnostic> diags;

  const std::string& path() const { return file->path; }
  const std::vector<SourceLine>& lines() const { return file->lines; }

  /// Reports a violation of `rule` at 1-based `line` unless a matching
  /// waiver targets that line.
  void report(std::size_t line, const std::string& rule,
              const std::string& message);

  /// True if a waiver with `token` targets `line` (and marks it used).
  bool consume_token(const std::string& token, std::size_t line);
};

struct Rule {
  RuleInfo info;
  void (*check)(RuleContext&);
};

/// The registered rules, in id order.
const std::vector<Rule>& rule_registry();

/// Waiver token -> rule id, derived from the registry.
const std::map<std::string, std::string>& waiver_tokens();

/// Registry lookup by id or name; nullptr when unknown.
const Rule* find_rule(const std::string& id_or_name);

// Individual rule passes (one translation unit per family under rules/).
void check_determinism(RuleContext& ctx);    // R1
void check_ordering(RuleContext& ctx);       // R2
void check_obs(RuleContext& ctx);            // R3
void check_concurrency(RuleContext& ctx);    // R4
void check_hygiene(RuleContext& ctx);        // R5
void check_epoch(RuleContext& ctx);          // R6
void check_fp_order(RuleContext& ctx);       // R7
void check_alloc(RuleContext& ctx);          // R8

/// Runs every registered rule over `file` within `project`, appends
/// waiver-syntax and (optionally) waiver-unused diagnostics, and returns
/// the result sorted by (path, line, rule).
std::vector<Diagnostic> run_rules(const FileModel& file,
                                  const ProjectModel& project,
                                  bool check_unused_waivers);

}  // namespace lts::lint
