// R3: obs instrumentation in hot paths (simcore, net) must follow the
// cached-enabled-flag pattern — registrations hoisted into a static
// *Metrics struct, mutations confined to an outlined record_* function,
// the call gated on obs_enabled_->load(relaxed). Ported from v1; the
// instrument-name table now reads the companion header from the project
// model instead of a re-parsed string.
#include <algorithm>
#include <regex>
#include <set>

#include "lts_lint/rules.hpp"

namespace lts::lint {
namespace {

bool r3_scope(const std::string& p) {
  return under_any(p, {"src/simcore/", "src/net/"});
}

/// Region kinds tracked while scanning a hot-path file. The PR-2 pattern
/// keeps hot loops clean: instruments are registered once inside a static
/// *Metrics struct, mutated only inside an outlined record_* function, and
/// the call into record_* is gated on a cached enabled flag.
enum class Region { kMetricsStruct, kRecordFn };

}  // namespace

void check_obs(RuleContext& ctx) {
  if (!r3_scope(ctx.path())) return;

  static const std::regex kMetricsStructRe(R"(\bstruct\s+\w*Metrics\b)");
  static const std::regex kRecordDefRe(R"(\brecord_\w+\s*\()");
  static const std::regex kRegisterRe(R"(\bobs::(counter|gauge|histogram)\s*\()");
  static const std::regex kInstrumentDeclRe(
      R"(obs::(?:Counter|Gauge|Histogram)&\s*(\w+))");
  static const std::regex kGuardRe(
      R"(obs_enabled_\s*->\s*load\s*\(\s*std::memory_order_relaxed\s*\))");

  // Instrument member names (from this file and the companion header) whose
  // .set()/.add() calls count as obs mutations; .inc()/.observe() are
  // obs-specific enough to match unconditionally.
  static const std::vector<SourceLine> kNoLines;
  const std::vector<SourceLine>& companion =
      ctx.companion != nullptr ? ctx.companion->lines : kNoLines;
  std::set<std::string> instruments;
  for (const std::vector<SourceLine>* lines : {&ctx.lines(), &companion}) {
    for (const SourceLine& l : *lines) {
      std::smatch m;
      std::string rest = l.code;
      while (std::regex_search(rest, m, kInstrumentDeclRe)) {
        instruments.insert(m[1].str());
        rest = m.suffix();
      }
    }
  }

  bool has_guard = false;
  for (const SourceLine& l : ctx.lines()) {
    if (std::regex_search(l.code, kGuardRe)) {
      has_guard = true;
      break;
    }
  }

  // Forward scan with a region stack keyed on brace depth.
  struct Open {
    Region region;
    int close_depth;  // depth to return to for the region to end
  };
  std::vector<Open> stack;
  int depth = 0;
  bool saw_record_fn = false;
  std::size_t first_record_line = 0;

  // Pending region whose opening brace has not appeared yet.
  bool pending = false;
  Region pending_region = Region::kMetricsStruct;

  auto in_region = [&](Region r) {
    return std::any_of(stack.begin(), stack.end(),
                       [&](const Open& o) { return o.region == r; });
  };

  /// True if the statement containing line i (joined with up to 4 previous
  /// lines, back to the prior ';', '{' or '}') contains `static` — the
  /// function-local `static obs::Counter& c = obs::counter(...)` idiom.
  auto statement_is_static = [&](std::size_t i) {
    std::string stmt;
    for (std::size_t back = 0; back <= 4 && back <= i; ++back) {
      const std::string& code = ctx.lines()[i - back].code;
      if (back > 0) {
        const std::size_t boundary = code.find_last_of(";{}");
        if (boundary != std::string::npos) {
          stmt.insert(0, code.substr(boundary + 1) + " ");
          break;
        }
      }
      stmt.insert(0, code + " ");
    }
    return std::regex_search(stmt, std::regex(R"(\bstatic\b)"));
  };

  for (std::size_t i = 0; i < ctx.lines().size(); ++i) {
    const std::string& code = ctx.lines()[i].code;

    // Region openers are recognized before brace counting so a same-line
    // '{' attaches to the region.
    if (!pending && std::regex_search(code, kMetricsStructRe)) {
      pending = true;
      pending_region = Region::kMetricsStruct;
    } else if (!pending && std::regex_search(code, kRecordDefRe)) {
      // A definition's '{' appears (possibly lines later) before any ';';
      // declarations end with ';' first and open no region.
      for (std::size_t j = i; j < ctx.lines().size() && j <= i + 6; ++j) {
        const std::string& look = ctx.lines()[j].code;
        const std::size_t brace = look.find('{');
        const std::size_t semi = look.find(';');
        if (brace != std::string::npos &&
            (semi == std::string::npos || brace < semi)) {
          pending = true;
          pending_region = Region::kRecordFn;
          saw_record_fn = true;
          if (first_record_line == 0) first_record_line = i + 1;
          break;
        }
        if (semi != std::string::npos) break;
      }
    }

    // Registrations: allowed inside a *Metrics struct or a static statement.
    if (std::regex_search(code, kRegisterRe)) {
      const bool allowed = in_region(Region::kMetricsStruct) ||
                           (pending && pending_region == Region::kMetricsStruct) ||
                           statement_is_static(i);
      if (!allowed) {
        ctx.report(i + 1, "R3",
                   "obs instrument registration in a hot path: hoist into a "
                   "static *Metrics struct so lookups never run per event");
      }
    }

    // Mutations: allowed only inside record_* functions.
    bool mutation = std::regex_search(
        code, std::regex(R"(\.\s*(inc|observe)\s*\()"));
    if (!mutation) {
      for (const std::string& name : instruments) {
        if (std::regex_search(
                code, std::regex(R"(\b)" + name + R"(\s*\.\s*(set|add)\s*\()"))) {
          mutation = true;
          break;
        }
      }
    }
    // A pending region counts as entered: a one-line definition's mutation
    // shares the line with the '{' that brace-tracking sees only afterward.
    if (mutation && !in_region(Region::kRecordFn) &&
        !(pending && pending_region == Region::kRecordFn)) {
      ctx.report(i + 1, "R3",
                 "obs instrument mutation in a hot path outside a record_* "
                 "function: outline it and gate the call on the cached "
                 "enabled flag (obs_enabled_->load(relaxed))");
    }

    // Brace tracking, attaching pending regions at their opening brace.
    for (char c : code) {
      if (c == '{') {
        ++depth;
        if (pending) {
          stack.push_back({pending_region, depth - 1});
          pending = false;
        }
      } else if (c == '}') {
        --depth;
        while (!stack.empty() && stack.back().close_depth >= depth) {
          stack.pop_back();
        }
      }
    }
  }

  if (saw_record_fn && !has_guard) {
    ctx.report(first_record_line, "R3",
               "record_* instrumentation present but no cached enabled-flag "
               "guard found: cache MetricsRegistry::global().enabled_flag() "
               "and branch on obs_enabled_->load(std::memory_order_relaxed)");
  }
}

}  // namespace lts::lint
