// R4 (concurrency hygiene) and R5 (header hygiene), ported from v1.
#include <regex>

#include "lts_lint/rules.hpp"

namespace lts::lint {
namespace {

bool thread_pool_path(const std::string& p) {
  return starts_with(p, "src/util/thread_pool.");
}

}  // namespace

void check_concurrency(RuleContext& ctx) {
  if (thread_pool_path(ctx.path())) return;  // the sanctioned implementation
  static const std::regex kRawThread(R"(std::j?thread\b(?!::))");
  static const std::regex kDetach(R"(\.\s*detach\s*\()");
  static const std::regex kParallelForCall(R"(\bparallel_for\s*\()");

  for (std::size_t i = 0; i < ctx.lines().size(); ++i) {
    const std::string& code = ctx.lines()[i].code;
    if (code.empty()) continue;
    if (std::regex_search(code, kRawThread)) {
      ctx.report(i + 1, "R4",
                 "raw std::thread outside src/util/thread_pool: use "
                 "ThreadPool (or justify with // lts-lint: thread-ok(...))");
    }
    if (std::regex_search(code, kDetach)) {
      ctx.report(i + 1, "R4",
                 "detach() leaks a thread past its owner's lifetime: join "
                 "via ThreadPool futures instead");
    }
    if (std::regex_search(code, kParallelForCall)) {
      // Join the argument list (bounded lookahead) to see the lambda's
      // capture list even when it starts on a later line.
      std::string call = code;
      for (std::size_t j = i + 1; j < ctx.lines().size() && j <= i + 12; ++j) {
        if (call.find("[&") != std::string::npos ||
            call.find('{') != std::string::npos ||
            call.find(';') != std::string::npos) {
          break;
        }
        call += ctx.lines()[j].code;
      }
      if (call.find("[&") == std::string::npos) continue;  // no shared capture
      if (ctx.consume_token("shared-guarded", i + 1)) continue;
      ctx.report(i + 1, "R4",
                 "parallel_for lambda captures by reference: declare the "
                 "sharing discipline with // lts-lint: "
                 "shared-guarded(mutex|atomic|partitioned|site-partitioned)");
    }
  }
}

void check_hygiene(RuleContext& ctx) {
  if (!is_header_path(ctx.path())) return;
  bool guarded = false;
  for (const SourceLine& l : ctx.lines()) {
    if (l.code.find("#pragma once") != std::string::npos ||
        l.code.find("#ifndef") != std::string::npos) {
      guarded = true;
      break;
    }
    // Only leading blank/comment lines may precede the guard.
    if (!is_blank(l.code)) break;
  }
  if (!guarded) {
    ctx.report(1, "R5",
               "header lacks #pragma once (or an include guard) before its "
               "first declaration");
  }
  static const std::regex kUsingNamespace(R"(\busing\s+namespace\b)");
  for (std::size_t i = 0; i < ctx.lines().size(); ++i) {
    if (std::regex_search(ctx.lines()[i].code, kUsingNamespace)) {
      ctx.report(i + 1, "R5",
                 "`using namespace` in a header leaks into every includer");
    }
  }
}

}  // namespace lts::lint
