// R1 (nondeterminism sources) and R2 (unordered containers), ported from
// the v1 single-file linter onto the shared project model. R2's cross-file
// half now reads the companion header out of the ProjectModel instead of
// re-reading it from disk per .cpp.
#include <regex>
#include <set>

#include "lts_lint/rules.hpp"

namespace lts::lint {
namespace {

bool r1_scope(const std::string& p) {
  // Wall-clock timing is the obs layer's business (span durations); the CLI
  // layer may read the environment. Everything else under src/ must be a
  // pure function of its inputs.
  return starts_with(p, "src/") && !starts_with(p, "src/obs/");
}

bool r2_scope(const std::string& p) {
  return under_any(p, {"src/simcore/", "src/net/", "src/core/",
                       "src/cluster/", "src/spark/", "src/tenant/"});
}

}  // namespace

void check_determinism(RuleContext& ctx) {
  if (!r1_scope(ctx.path())) return;
  struct Pattern {
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern> kPatterns = [] {
    std::vector<Pattern> p;
    p.push_back({std::regex(R"(std::random_device)"),
                 "std::random_device (seed via lts::Rng instead)"});
    p.push_back({std::regex(R"(\bs?rand\s*\()"),
                 "rand()/srand() (use the seeded lts::Rng streams)"});
    p.push_back({std::regex(
                     R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
                 "wall-clock time (simulation time comes from sim::Engine)"});
    return p;
  }();
  static const std::regex kGetenv(R"(\bgetenv\s*\()");
  for (std::size_t i = 0; i < ctx.lines().size(); ++i) {
    const std::string& code = ctx.lines()[i].code;
    if (code.empty()) continue;
    for (const Pattern& p : kPatterns) {
      if (std::regex_search(code, p.re)) {
        ctx.report(i + 1, "R1",
                   std::string("nondeterminism source in sim/decision code: ") +
                       p.what);
      }
    }
    if (std::regex_search(code, kGetenv)) {
      ctx.report(i + 1, "R1",
                 "getenv outside the CLI layer: configuration must flow "
                 "through explicit options");
    }
  }
}

void check_ordering(RuleContext& ctx) {
  if (!r2_scope(ctx.path())) return;
  static const std::regex kUnordered(R"(\bunordered_(map|set)\b)");
  static const std::regex kPreprocessor(R"(^\s*#)");
  for (std::size_t i = 0; i < ctx.lines().size(); ++i) {
    // #include lines are exempt: the rule targets declarations and
    // iteration, and an include with no use is dead code, not a hazard.
    if (std::regex_search(ctx.lines()[i].code, kPreprocessor)) continue;
    if (std::regex_search(ctx.lines()[i].code, kUnordered)) {
      ctx.report(i + 1, "R2",
                 "unordered container in determinism-critical code: "
                 "hash-iteration order is implementation-defined; use "
                 "std::map/std::set or sorted iteration");
    }
  }
  // Iteration in this file over a container the companion header declared.
  if (ctx.companion == nullptr) return;
  std::set<std::string> names = unordered_names(ctx.companion->lines);
  if (names.empty()) return;
  for (std::size_t i = 0; i < ctx.lines().size(); ++i) {
    const std::string& code = ctx.lines()[i].code;
    for (const std::string& name : names) {
      const bool range_for =
          std::regex_search(code, std::regex(R"(for\s*\([^;)]*:\s*)" + name +
                                             R"(\b)"));
      const bool begin_call =
          code.find(name + ".begin(") != std::string::npos ||
          code.find(name + ".cbegin(") != std::string::npos;
      if (range_for || begin_call) {
        ctx.report(i + 1, "R2",
                   "iteration over unordered container '" + name +
                       "' declared in the companion header: order is "
                       "implementation-defined");
      }
    }
  }
}

}  // namespace lts::lint
