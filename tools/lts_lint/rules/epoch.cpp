// R6: epoch/invalidation protocol. The batched serving path (PR 6) caches
// feature snapshots keyed on Tsdb::epoch(), and the max-min solver (PR 4/7)
// caches rates behind FlowManager's dirty flag. Every *public* member
// function that mutates the guarded state must acknowledge the mutation —
// bump the epoch or mark the cache dirty — or downstream consumers serve
// stale data. Private helpers are exempt: they run inside a public mutator
// that owns the acknowledgment (the cross-file access index is what makes
// that distinction possible).
//
// The scan covers namespace-level definitions (out-of-line members), which
// is where the repo convention keeps mutators; an inline mutator hidden in
// a class body is not seen, so protocol classes keep mutations outlined.
#include <regex>

#include "lts_lint/rules.hpp"

namespace lts::lint {
namespace {

struct Protocol {
  const char* cls;
  std::regex guarded;  // matches a guarded member's full name
  std::regex ack;      // acknowledgment pattern, searched over the body
  const char* fix;     // what the diagnostic tells the author to call
};

const std::vector<Protocol>& protocols() {
  static const std::vector<Protocol> kProtocols = [] {
    std::vector<Protocol> p;
    p.push_back({"Tsdb",
                 std::regex(R"(^(series_|by_name_|samples_appended_|samples_dropped_)$)"),
                 std::regex(R"(\+\+\s*epoch_|epoch_\s*\+\+|bump_epoch\s*\()"),
                 "++epoch_ (or bump_epoch())"});
    p.push_back({"NodeExporter",
                 std::regex(R"(^(silenced_|report_delay_)$)"),
                 std::regex(R"(bump_epoch\s*\()"),
                 "tsdb_.bump_epoch()"});
    p.push_back({"FlowManager",
                 std::regex(R"(^(slots_|free_slots_|by_id_|path_arena_|live_path_words_)$)"),
                 std::regex(R"(mark_dirty\s*\(|invalidate_rates\s*\(|dirty_\s*=[^=])"),
                 "mark_dirty() (or invalidate_rates())"});
    return p;
  }();
  return kProtocols;
}

/// First guarded-member mutation on `code`, or "" if none. Mutations:
/// assignment/compound assignment, ++/--, subscript assignment, and
/// mutating container member calls.
std::string mutated_member(const std::string& code, const Protocol& proto) {
  static const std::regex kAssign(
      R"((\b[A-Za-z_]\w*_)\s*(?:\[[^\]]*\]\s*)?[+\-*/|&^]?=(?!=))");
  static const std::regex kPreIncDec(R"((?:\+\+|--)\s*([A-Za-z_]\w*_)\b)");
  static const std::regex kPostIncDec(R"((\b[A-Za-z_]\w*_)\s*(?:\+\+|--))");
  static const std::regex kCallMut(
      R"((\b[A-Za-z_]\w*_)\s*\.\s*(?:push_back|emplace_back|emplace|insert|erase|clear|resize|pop_back|assign)\s*\()");
  for (const std::regex* re : {&kAssign, &kPreIncDec, &kPostIncDec, &kCallMut}) {
    auto begin = std::sregex_iterator(code.begin(), code.end(), *re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (std::regex_match(name, proto.guarded)) return name;
    }
  }
  return "";
}

}  // namespace

void check_epoch(RuleContext& ctx) {
  for (const FunctionDef& fd : ctx.file->functions) {
    if (fd.class_name.empty()) continue;
    const Protocol* proto = nullptr;
    for (const Protocol& p : protocols()) {
      if (fd.class_name == p.cls) {
        proto = &p;
        break;
      }
    }
    if (proto == nullptr) continue;
    if (fd.name == fd.class_name) continue;  // construction precedes observers

    // Private/protected helpers mutate under a public mutator that owns the
    // acknowledgment. Unknown access (class or function missing from the
    // index) is treated as public: the rule fails closed.
    const ClassInfo* ci = ctx.project->find_class(fd.class_name);
    if (ci != nullptr) {
      const MemberFunction* mf = ci->function(fd.name);
      if (mf != nullptr && mf->access != "public") continue;
    }

    std::size_t first_mutation = 0;
    std::string member;
    bool acked = false;
    for (std::size_t l = fd.body_begin; l <= fd.body_end &&
                                        l <= ctx.lines().size();
         ++l) {
      const std::string& code = ctx.lines()[l - 1].code;
      if (first_mutation == 0) {
        member = mutated_member(code, *proto);
        if (!member.empty()) first_mutation = l;
      }
      if (!acked && std::regex_search(code, proto->ack)) acked = true;
    }
    if (first_mutation != 0 && !acked) {
      ctx.report(first_mutation, "R6",
                 std::string(fd.class_name) + "::" + fd.name +
                     " mutates epoch-guarded state ('" + member +
                     "') without acknowledging it: call " + proto->fix +
                     " so cached snapshots/rates are invalidated");
    }
  }
}

}  // namespace lts::lint
