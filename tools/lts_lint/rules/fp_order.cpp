// R7: floating-point reduction order. FP addition is not associative, so
// any reduction whose operand order depends on thread interleaving
// (std::reduce, accumulation into state shared across parallel_for items)
// or on hash order (std::accumulate over an unordered container) yields
// run-to-run ULP differences that the byte-identical golden replay and the
// bit-exact batched-vs-scalar serving checks both reject.
//
// Accumulation into a variable *declared inside* the parallel_for extent is
// per-item state and deterministic — only scalar names declared outside the
// extent (shared accumulators, members) are flagged. Subscripted updates
// (`v[i] += x`) are exempt: each element's final value is independent of
// item interleaving under the partitioned disciplines R4 already audits,
// so they are an ownership question, not an ordering one.
#include <regex>
#include <set>

#include "lts_lint/rules.hpp"

namespace lts::lint {
namespace {

bool r7_scope(const std::string& p) {
  return under_any(p, {"src/simcore/", "src/net/", "src/core/",
                       "src/cluster/", "src/spark/", "src/ml/",
                       "src/tenant/"});
}

/// Names declared with a floating-point scalar type on `code`, appended to
/// `scalars`. `Rate`/`SimTime` are the repo's double aliases.
void collect_fp_names(const std::string& code, std::set<std::string>& scalars) {
  static const std::regex kScalar(
      R"(\b(?:double|float|Rate|SimTime)\s+([A-Za-z_]\w*)\s*(?:=|;|,|\)|\{))");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kScalar);
       it != std::sregex_iterator(); ++it) {
    scalars.insert((*it)[1].str());
  }
}

}  // namespace

void check_fp_order(RuleContext& ctx) {
  if (!r7_scope(ctx.path())) return;

  static const std::regex kReduce(R"(std::(reduce|transform_reduce)\s*\()");
  static const std::regex kAccumulate(R"(std::accumulate\s*\(\s*([A-Za-z_]\w*)\s*\.)");
  static const std::regex kParallelFor(R"(\bparallel_for\s*\()");
  static const std::regex kFpAccum(
      R"((\b[A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)?[+\-]=(?!=))");

  // FP names visible file-wide (locals anywhere in the file plus companion
  // members/declarations): the candidate set for shared accumulators.
  std::set<std::string> fp_scalars;
  for (const SourceLine& l : ctx.lines()) {
    collect_fp_names(l.code, fp_scalars);
  }
  if (ctx.companion != nullptr) {
    for (const SourceLine& l : ctx.companion->lines) {
      collect_fp_names(l.code, fp_scalars);
    }
  }

  std::set<std::string> unordered;  // for the accumulate check
  {
    unordered = unordered_names(ctx.lines());
    if (ctx.companion != nullptr) {
      for (const std::string& n : unordered_names(ctx.companion->lines)) {
        unordered.insert(n);
      }
    }
  }

  // Parallel-for extents: paren-matched from each call site.
  int par_depth = 0;  // >0 while inside a parallel_for argument list
  std::set<std::string> local_scalars;  // declared inside the extent

  for (std::size_t i = 0; i < ctx.lines().size(); ++i) {
    const std::string& code = ctx.lines()[i].code;
    if (code.empty()) continue;

    if (std::regex_search(code, kReduce)) {
      ctx.report(i + 1, "R7",
                 "std::reduce/transform_reduce: reduction order is "
                 "unspecified, FP results vary run to run; use a sequential "
                 "accumulate or a fixed-shape pairwise tree");
    }
    std::smatch am;
    if (std::regex_search(code, am, kAccumulate) &&
        unordered.count(am[1].str()) > 0) {
      ctx.report(i + 1, "R7",
                 "std::accumulate over unordered container '" + am[1].str() +
                     "': hash order decides the FP summation order; iterate "
                     "a sorted view instead");
    }

    // Track parallel_for extents by paren depth so FP accumulation into
    // state shared across items is caught wherever the lambda body sits.
    std::size_t scan_from = 0;
    std::smatch pm;
    if (par_depth == 0) {
      if (std::regex_search(code, pm, kParallelFor)) {
        scan_from = pm.position(0) + pm.length(0);
        par_depth = 1;
        local_scalars.clear();
      } else {
        continue;
      }
    }

    // In-extent: declarations first (a `double s = 0;` seen before its
    // later `s +=` makes the accumulation per-item, not shared).
    collect_fp_names(code.substr(scan_from), local_scalars);

    for (auto it = std::sregex_iterator(code.begin() + scan_from, code.end(),
                                        kFpAccum);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if ((*it)[0].str().find('[') != std::string::npos) continue;
      if (fp_scalars.count(name) > 0 && local_scalars.count(name) == 0) {
        ctx.report(i + 1, "R7",
                   "FP accumulation into '" + name +
                       "' shared across parallel_for items: summation order "
                       "follows thread interleaving; accumulate per item and "
                       "combine in a fixed order after the join");
      }
    }

    for (std::size_t k = scan_from; k < code.size(); ++k) {
      if (code[k] == '(') ++par_depth;
      if (code[k] == ')') {
        --par_depth;
        if (par_depth == 0) break;  // extent closed mid-line
      }
    }
    if (par_depth < 0) par_depth = 0;
  }
}

}  // namespace lts::lint
