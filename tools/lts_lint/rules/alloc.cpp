// R8: hot-path allocation. The scale arc's budgets (max-min rate solve at
// 100k flows, batched serving throughput) assume the steady state allocates
// nothing: scratch is reused across calls and vectors are pre-reserved. An
// allocator call (new, make_unique/make_shared, std::function's type-erased
// storage) or a growth-doubling push_back loop inside the declared hot-path
// functions turns O(1) amortized work into latency spikes under load.
//
// A push_back inside a loop is accepted when the same container saw a
// .reserve( earlier in the function body; anything else needs an
// alloc-ok(...) waiver stating why the allocation is bounded (e.g. a
// persistent scratch vector whose capacity survives clear()).
#include <regex>
#include <set>
#include <vector>

#include "lts_lint/rules.hpp"

namespace lts::lint {
namespace {

bool is_hot(const FunctionDef& fd) {
  static const std::set<std::string> kHot = {
      "recompute_rates",  "recompute_rates_core",
      "fill_flows",       "hierarchical_fill",
      "predict_batch",    "schedule_many",
      "schedule_many_from_snapshot",
      "schedule_batch",
      // Training hot path: these run once per tree node (split search) or
      // once per boosting round, inside the serve-time retraining loop.
      "best_split",       "build_node",
      "boost_one_round"};
  if (kHot.count(fd.name) > 0) return true;
  // Engine dispatch: the per-event loop of the simulator itself.
  return fd.class_name == "Engine" && (fd.name == "step" || fd.name == "run");
}

}  // namespace

void check_alloc(RuleContext& ctx) {
  static const std::regex kNew(R"(\bnew\b)");
  static const std::regex kMake(R"(std::make_(?:unique|shared)\s*<)");
  static const std::regex kFunction(R"(std::function\s*<)");
  static const std::regex kLoop(R"(\b(?:for|while)\s*\()");
  static const std::regex kPushBack(
      R"((\b[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*\.\s*(?:push_back|emplace_back)\s*\()");

  for (const FunctionDef& fd : ctx.file->functions) {
    if (!is_hot(fd)) continue;
    if (fd.body_begin == 0 || fd.body_end > ctx.lines().size()) continue;

    // Containers .reserve()d so far in this body, by full access path.
    std::set<std::string> reserved;
    static const std::regex kReserve(
        R"((\b[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*(?:\.|->)\s*reserve\s*\()");

    // Loop nesting: a pending for/while attaches to its next '{'; braceless
    // single-line loops are caught by the same-line check below.
    std::vector<int> loop_depths;
    int depth = 0;
    bool pending_loop = false;

    for (std::size_t l = fd.body_begin; l <= fd.body_end; ++l) {
      const std::string& code = ctx.lines()[l - 1].code;

      for (auto it = std::sregex_iterator(code.begin(), code.end(), kReserve);
           it != std::sregex_iterator(); ++it) {
        reserved.insert((*it)[1].str());
      }

      if (std::regex_search(code, kNew)) {
        ctx.report(l, "R8",
                   std::string("allocator call (new) inside hot path ") +
                       fd.name + ": preallocate outside the steady state");
      }
      if (std::regex_search(code, kMake)) {
        ctx.report(l, "R8",
                   std::string("make_unique/make_shared inside hot path ") +
                       fd.name + ": heap allocation per call; hoist to setup");
      }
      if (std::regex_search(code, kFunction)) {
        ctx.report(l, "R8",
                   std::string("std::function constructed inside hot path ") +
                       fd.name +
                       ": type-erased storage may allocate; take a template "
                       "or function_ref-style parameter instead");
      }

      const bool line_opens_loop = std::regex_search(code, kLoop);
      const bool in_loop = !loop_depths.empty() || line_opens_loop;
      if (in_loop) {
        for (auto it =
                 std::sregex_iterator(code.begin(), code.end(), kPushBack);
             it != std::sregex_iterator(); ++it) {
          const std::string name = (*it)[1].str();
          if (reserved.count(name) > 0) continue;
          ctx.report(l, "R8",
                     "un-reserved " + name + ".push_back in a loop inside "
                     "hot path " + fd.name + ": growth reallocation in the "
                     "steady state; reserve() up front or reuse persistent "
                     "scratch (waive with alloc-ok if capacity is retained)");
        }
      }

      if (line_opens_loop) pending_loop = true;
      for (char c : code) {
        if (c == '{') {
          ++depth;
          if (pending_loop) {
            loop_depths.push_back(depth);
            pending_loop = false;
          }
        } else if (c == '}') {
          while (!loop_depths.empty() && loop_depths.back() >= depth) {
            loop_depths.pop_back();
          }
          --depth;
        }
      }
      if (pending_loop && code.find(';') != std::string::npos &&
          code.find('{') == std::string::npos) {
        pending_loop = false;  // braceless loop body ended on this line
      }
    }
  }
}

}  // namespace lts::lint
