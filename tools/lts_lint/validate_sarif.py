#!/usr/bin/env python3
"""Structural schema check for lts_lint's SARIF output.

CI runs this against `lts_lint --format=sarif` so a refactor of the output
backend cannot silently produce a document that GitHub code scanning (or any
SARIF 2.1.0 consumer) would reject. Stdlib only — no jsonschema dependency.

Usage: validate_sarif.py <file.sarif>
Exits 0 when the document is well-formed, 1 with a diagnostic otherwise.
"""

import json
import sys


def fail(msg):
    print(f"validate_sarif: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def main(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    require(isinstance(doc, dict), "top level must be an object")
    require(doc.get("version") == "2.1.0",
            f"version must be '2.1.0', got {doc.get('version')!r}")
    require("sarif-schema-2.1.0" in doc.get("$schema", ""),
            "$schema must reference the SARIF 2.1.0 schema")

    runs = doc.get("runs")
    require(isinstance(runs, list) and runs, "runs must be a non-empty array")
    for run in runs:
        driver = run.get("tool", {}).get("driver", {})
        require(isinstance(driver.get("name"), str) and driver["name"],
                "tool.driver.name must be a non-empty string")

        rule_ids = set()
        rules = driver.get("rules", [])
        require(isinstance(rules, list) and rules,
                "tool.driver.rules must be a non-empty array")
        for rule in rules:
            rid = rule.get("id")
            require(isinstance(rid, str) and rid, "every rule needs an id")
            require(rid not in rule_ids, f"duplicate rule id {rid}")
            rule_ids.add(rid)
            require(
                isinstance(rule.get("shortDescription", {}).get("text"), str),
                f"rule {rid} needs shortDescription.text")

        results = run.get("results")
        require(isinstance(results, list),
                "results must be an array (empty when clean)")
        for i, res in enumerate(results):
            where = f"results[{i}]"
            rid = res.get("ruleId")
            require(rid in rule_ids,
                    f"{where}.ruleId {rid!r} missing from the rule table")
            require(res.get("level") in ("error", "warning", "note"),
                    f"{where}.level invalid: {res.get('level')!r}")
            require(isinstance(res.get("message", {}).get("text"), str),
                    f"{where} needs message.text")
            locs = res.get("locations")
            require(isinstance(locs, list) and locs,
                    f"{where} needs at least one location")
            phys = locs[0].get("physicalLocation", {})
            uri = phys.get("artifactLocation", {}).get("uri")
            require(isinstance(uri, str) and uri,
                    f"{where} needs physicalLocation.artifactLocation.uri")
            start = phys.get("region", {}).get("startLine")
            require(isinstance(start, int) and start >= 1,
                    f"{where}.region.startLine must be an int >= 1")

    n = sum(len(r.get("results", [])) for r in runs)
    print(f"validate_sarif: OK ({len(runs)} run(s), {n} result(s))")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        fail("usage: validate_sarif.py <file.sarif>")
    main(sys.argv[1])
