// lts_lint project model: the shared substrate every rule reads.
//
// Layer 1 — per-file token stream. Each physical line is split into
// executable `code` (string/char literals blanked, comments stripped) and
// `comment` text (where waivers live), with block-comment state tracked
// across lines.
//
// Layer 2 — per-file structure. Waiver annotations resolved to their target
// lines, `#include "..."` directives, and namespace-level function
// definitions (free and `Class::member`) with their body line ranges.
//
// Layer 3 — repo-wide index. Class definitions with their data members
// (name, declared type, access) and member-function declarations (name,
// access), merged across every scanned file, plus the include graph:
// quoted includes resolved against the include roots discovered from
// `compile_commands.json` (falling back to <root>/src and <root>/tools).
// The index is what lets a rule checking src/telemetry/tsdb.cpp know that
// `series_` is a private member of `Tsdb` declared in tsdb.hpp, that
// `append` is public, and which header is the .cpp's companion — the
// cross-file facts the R6/R7/R8 invariant rules are built on.
//
// Parsing is line-oriented and heuristic by design (no real C++ frontend):
// it exploits the repo's enforced conventions — data members end in `_`,
// one declaration per line, functions defined at namespace scope. Inline
// member-function bodies inside class definitions are not scanned for
// rule violations (R6 protocol classes keep their mutators outlined,
// which the rules themselves encourage).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace lts::lint {

struct Diagnostic {
  std::string path;     // repo-relative, forward slashes
  std::size_t line = 0; // 1-based
  std::string rule;     // "R1".."R8", "waiver-syntax", "waiver-unused"
  std::string message;

  bool operator==(const Diagnostic&) const = default;
};

/// One physical line split into executable text and comment text. String and
/// character literals are blanked from `code` so patterns inside them (e.g.
/// this linter's own rule regexes) never fire; comment text is kept
/// separately because waivers live there.
struct SourceLine {
  std::string code;
  std::string comment;
};

std::vector<std::string> split_lines(const std::string& text);
std::vector<SourceLine> preprocess(const std::string& text);

bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);
bool is_header_path(const std::string& path);
bool is_blank(const std::string& s);
bool under_any(const std::string& path,
               std::initializer_list<const char*> dirs);

// --------------------------------------------------------------- waivers ----

struct Waiver {
  std::size_t line = 0;    // 1-based line the waiver comment sits on
  std::size_t target = 0;  // 1-based line it applies to
  std::string token;
  std::string justification;
  std::string rule;  // rule id the token waives; empty if malformed
  bool used = false;
};

/// Finds waivers in comment text and resolves each to its target line: the
/// same line when it trails code, otherwise the next line that carries code
/// (within a 3-line window, so a standalone comment block can precede its
/// target). `tokens` maps waiver token -> rule id; malformed annotations are
/// appended to `diags` as `waiver-syntax`.
std::vector<Waiver> collect_waivers(const std::vector<SourceLine>& lines,
                                    const std::map<std::string, std::string>& tokens,
                                    std::vector<Diagnostic>& diags,
                                    const std::string& path);

// ----------------------------------------------------------------- index ----

struct MemberField {
  std::string name;    // always `_`-suffixed (the repo's member convention)
  std::string type;    // declared type text, as written
  std::string access;  // "public" | "protected" | "private"
};

struct MemberFunction {
  std::string name;
  std::string access;
};

struct ClassInfo {
  std::string name;
  std::string file;  // file whose scan contributed the definition
  std::vector<MemberField> fields;
  std::vector<MemberFunction> functions;

  const MemberField* field(const std::string& n) const;
  const MemberFunction* function(const std::string& n) const;
};

/// A namespace-level function definition (free or out-of-line member).
struct FunctionDef {
  std::string class_name;  // "" for free functions
  std::string name;
  std::size_t signature_line = 0;  // 1-based line the name appears on
  std::size_t body_begin = 0;      // line carrying the opening '{'
  std::size_t body_end = 0;        // line carrying the matching '}'
};

struct FileModel {
  std::string path;
  std::vector<SourceLine> lines;
  std::vector<Waiver> waivers;
  std::vector<Diagnostic> waiver_diags;  // waiver-syntax findings
  std::vector<FunctionDef> functions;
  std::vector<std::string> includes;  // raw quoted include targets, in order
  std::vector<ClassInfo> classes;     // classes defined in this file
};

/// Builds the per-file model: preprocessed lines, waivers (validated against
/// `tokens`), includes, namespace-level function definitions, and class
/// definitions with member access tracking.
FileModel build_file_model(const std::string& rel_path,
                           const std::string& content,
                           const std::map<std::string, std::string>& tokens);

/// Names of unordered_map/unordered_set members/variables declared in
/// `lines` (for the R2 cross-file iteration check and the R7 accumulate
/// check).
std::set<std::string> unordered_names(const std::vector<SourceLine>& lines);

// ---------------------------------------------------------------- project ----

class ProjectModel {
 public:
  /// Repo-relative path -> file model. The content cache: every file is
  /// read and preprocessed exactly once, then shared by its own lint pass
  /// and by every pass that sees it as a companion.
  std::map<std::string, FileModel> files;
  /// Class name -> merged info across all scanned files (a header's member
  /// list wins over a forward declaration; first full definition wins).
  std::map<std::string, ClassInfo> classes;
  /// file -> resolved repo-relative include edges (quoted includes only,
  /// resolved against the include roots; unresolvable includes omitted).
  std::map<std::string, std::vector<std::string>> include_edges;

  const ClassInfo* find_class(const std::string& name) const;

  /// Companion header of a .cpp/.cc: the first include edge whose filename
  /// stem matches the source's, else the same-directory `<stem>.hpp` when
  /// present in the file set. nullptr when there is none.
  const FileModel* companion_of(const std::string& cpp_path) const;

  /// Assembles a model from (path, content) pairs. `include_roots` are
  /// repo-relative prefixes ("src", "tools") used to resolve quoted
  /// includes against the scanned file set.
  static ProjectModel from_files(
      const std::vector<std::pair<std::string, std::string>>& path_content,
      const std::vector<std::string>& include_roots,
      const std::map<std::string, std::string>& tokens);
};

/// Extracts repo-relative include roots from a compile_commands.json blob:
/// every `-I<dir>` under `root` becomes a root prefix. Returns the default
/// {"src", "tools"} when the text is empty or yields nothing under root.
std::vector<std::string> include_roots_from_compile_commands(
    const std::string& json_text, const std::string& root);

}  // namespace lts::lint
