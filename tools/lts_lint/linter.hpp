// lts_lint: project-specific static analysis for determinism and
// concurrency invariants.
//
// The simulator is only a valid training-data generator if identical seeds
// yield identical telemetry traces and labels (the property the paper's
// Table 4 accuracy numbers rest on). Golden-replay tests catch determinism
// regressions after the fact; this linter rejects the *sources* of
// nondeterminism at review time, as machine-checkable rules:
//
//   R1  no nondeterminism sources in simulation/decision code under src/
//       (std::random_device, rand()/srand(), wall clocks, getenv outside
//       the CLI layer).
//   R2  no std::unordered_map / std::unordered_set in determinism-critical
//       directories (simcore, net, core, cluster, spark): hash-iteration
//       order is implementation-defined and must never reach event dispatch,
//       scheduling decisions, or telemetry output.
//   R3  obs instrumentation in hot paths (simcore, net) must follow the
//       cached enabled-flag pattern: registrations hoisted into a static
//       *Metrics struct, mutations confined to an outlined record_*
//       function, and the file must gate on obs_enabled_->load(relaxed).
//   R4  concurrency hygiene: raw std::thread / detach() only inside
//       src/util/thread_pool; parallel_for lambdas that capture by
//       reference must declare their sharing discipline with a
//       shared-guarded(mutex|atomic|partitioned) annotation.
//   R5  header hygiene: every header carries #pragma once (or an include
//       guard); no file-scope `using namespace` in headers.
//
// Violations are waivable per line with a justified annotation of the form
// "lts-lint" + ": <token>(<justification>)" in a comment (spelled out
// verbatim would register as a malformed waiver on this very file),
// where <token> is one of nondeterminism-ok (R1), ordered-ok (R2),
// obs-gated (R3), thread-ok (R4), shared-guarded (R4). The annotation sits
// on the flagged line or on a standalone comment line directly above it.
// Malformed waivers (unknown token, empty justification, shared-guarded
// with a strategy other than mutex/atomic/partitioned) are diagnosed as
// `waiver-syntax`; waivers that suppress nothing are diagnosed as
// `waiver-unused`, so stale waivers cannot accumulate silently.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lts::lint {

struct Diagnostic {
  std::string path;     // repo-relative, forward slashes
  std::size_t line = 0; // 1-based
  std::string rule;     // "R1".."R5", "waiver-syntax", "waiver-unused"
  std::string message;

  bool operator==(const Diagnostic&) const = default;
};

struct Options {
  /// Diagnose well-formed waivers that suppressed no violation.
  bool check_unused_waivers = true;
};

/// Lints `content` as if it lived at repo-relative `rel_path` (the path
/// drives rule scoping). `companion` is the text of the paired header for a
/// .cpp file (empty if none): member declarations there feed the R2
/// iteration check and the R3 instrument-name table.
std::vector<Diagnostic> lint_text(const std::string& rel_path,
                                  const std::string& content,
                                  const std::string& companion = "",
                                  const Options& opts = {});

/// Walks src/, tools/, bench/, and tests/ under `root`, linting every
/// .cpp/.hpp/.h/.cc file. Skips lint_fixtures (seeded violations used to
/// test the rules) and build directories. Results are sorted by path then
/// line, so output is deterministic.
std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const Options& opts = {});

/// GCC-style rendering: "path:line: error[rule]: message\n" per entry.
std::string format_diagnostics(const std::vector<Diagnostic>& diags);

}  // namespace lts::lint
