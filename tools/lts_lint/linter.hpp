// lts_lint: project-specific static analysis for determinism, concurrency,
// and caching invariants.
//
// The simulator is only a valid training-data generator if identical seeds
// yield identical telemetry traces and labels (the property the paper's
// Table 4 accuracy numbers rest on). Golden-replay tests catch determinism
// regressions after the fact; this linter rejects the *sources* of
// nondeterminism — and, since v2, violations of the cross-file caching
// protocols the scale arc introduced — at review time.
//
// v2 is a rule registry over a shared project model (tools/lts_lint/model):
// per-file token streams with comments/strings stripped, plus a repo-wide
// index of class members (with access), namespace-level function
// definitions, and the include graph. Rules R1–R5 are the v1 single-file
// checks; R6–R8 are cross-file invariant rules that read the index:
//
//   R1  no nondeterminism sources in sim/decision code under src/
//   R2  no unordered containers in determinism-critical dirs
//   R3  obs instrumentation pattern in hot paths (simcore, net)
//   R4  concurrency hygiene (ThreadPool only; declared sharing disciplines)
//   R5  header hygiene (#pragma once, no using-namespace)
//   R6  epoch/invalidation protocol: public mutators of epoch-guarded
//       state must bump the epoch / mark the rate cache dirty
//   R7  FP reduction order: no std::reduce, no shared FP accumulation in
//       parallel_for lambdas, no accumulate over unordered iteration
//   R8  hot-path allocation: no allocator calls or un-reserved push_back
//       loops in the declared hot-path functions
//
// Violations are waivable per line with a justified annotation of the form
// "lts-lint" + ": <token>(<justification>)" in a comment (spelled out
// verbatim would register as a malformed waiver on this very file), where
// <token> is one of nondeterminism-ok (R1), ordered-ok (R2), obs-gated
// (R3), thread-ok / shared-guarded (R4), epoch-ok (R6), fp-order-ok (R7),
// alloc-ok (R8). The annotation sits on the flagged line or on a standalone
// comment line directly above it. Malformed waivers are diagnosed as
// `waiver-syntax`, waivers that suppress nothing as `waiver-unused`.
//
// See rules.hpp for the registry (metadata drives --list-rules, --explain,
// and the SARIF rule table) and output.hpp for formats and baseline diffs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lts_lint/model.hpp"
#include "lts_lint/output.hpp"

namespace lts::lint {

struct Options {
  /// Diagnose well-formed waivers that suppressed no violation.
  bool check_unused_waivers = true;
  /// Worker parallelism for lint_tree: 0 = the process-wide ThreadPool,
  /// 1 = fully serial, N = a dedicated N-worker pool. Output is
  /// byte-identical across all settings.
  std::size_t jobs = 0;
};

/// Lints `content` as if it lived at repo-relative `rel_path` (the path
/// drives rule scoping). `companion` is the text of the paired header for a
/// .cpp file (empty if none): declarations there feed the R2 iteration
/// check, the R3 instrument-name table, and the R6 member-access index.
std::vector<Diagnostic> lint_text(const std::string& rel_path,
                                  const std::string& content,
                                  const std::string& companion = "",
                                  const Options& opts = {});

/// Walks src/, tools/, bench/, and tests/ under `root`, linting every
/// .cpp/.hpp/.h/.cc file over a shared project model (each file is read and
/// parsed exactly once; companion headers are looked up in the model, not
/// re-read). Skips lint_fixtures (seeded violations used to test the rules)
/// and build directories. Per-file passes run on the ThreadPool; results
/// are merged in path order then sorted by (path, line, rule), so output is
/// deterministic and independent of worker count.
std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const Options& opts = {});

}  // namespace lts::lint
