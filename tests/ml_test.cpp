// Unit tests for the ML library: matrix/solver, dataset, preprocessing,
// metrics, and the four regressor families with serialization round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "ml/dataset.hpp"
#include "ml/forest.hpp"
#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "ml/matrix.hpp"
#include "ml/metrics.hpp"
#include "ml/model.hpp"
#include "ml/preprocess.hpp"
#include "ml/tree.hpp"
#include "ml/validate.hpp"
#include "util/rng.hpp"

namespace lts::ml {
namespace {

// Synthetic regression problem with known structure: linear part + an
// interaction + noise. Used across model families.
Dataset make_synthetic(std::size_t n, std::uint64_t seed,
                       double noise = 0.05, bool interaction = true) {
  Rng rng(seed);
  Dataset data;
  data.set_feature_names({"x0", "x1", "x2", "x3"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1, 1);
    const double x1 = rng.uniform(-1, 1);
    const double x2 = rng.uniform(0, 2);
    const double x3 = rng.uniform(-1, 1);  // irrelevant feature
    double y = 3.0 * x0 - 2.0 * x1 + 0.5 * x2 + 1.0;
    if (interaction) y += 2.0 * x0 * x1;
    y += noise * rng.normal();
    data.add_row(std::vector<double>{x0, x1, x2, x3}, y);
  }
  return data;
}

// --------------------------------------------------------------- matrix ----

TEST(Matrix, BasicAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.row(1)[2], 7.0);
}

TEST(Matrix, PushRowFixesWidth) {
  Matrix m;
  m.push_row(std::vector<double>{1, 2, 3});
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_THROW(m.push_row(std::vector<double>{1, 2}), Error);
  m.push_row(std::vector<double>{4, 5, 6});
  EXPECT_EQ(m.rows(), 2u);
}

TEST(Cholesky, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
  Matrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 3;
  const auto x = solve_cholesky(a, {10.0, 8.0});
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 1;  // eigenvalue -1
  EXPECT_THROW(solve_cholesky(a, {1.0, 1.0}), Error);
}

TEST(Cholesky, LargerRandomSystem) {
  Rng rng(3);
  const std::size_t n = 12;
  // Build SPD A = B^T B + I and verify A x ~= b round trip.
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  }
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) a(i, j) += b(k, i) * b(k, j);
    }
    a(i, i) += 1.0;
  }
  std::vector<double> rhs(n);
  for (auto& v : rhs) v = rng.normal();
  Matrix a_copy = a;
  const auto x = solve_cholesky(std::move(a_copy), rhs);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += a(i, j) * x[j];
    EXPECT_NEAR(acc, rhs[i], 1e-8);
  }
}

// -------------------------------------------------------------- dataset ----

TEST(Dataset, SelectWithDuplicates) {
  Dataset data = make_synthetic(10, 1);
  const std::vector<std::size_t> idx{0, 0, 5};
  const Dataset sub = data.select(idx);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.target(0), sub.target(1));
  EXPECT_DOUBLE_EQ(sub.target(2), data.target(5));
}

TEST(Dataset, TrainTestSplitPartitions) {
  Dataset data = make_synthetic(100, 2);
  Rng rng(9);
  const auto [train, test] = data.train_test_split(0.25, rng);
  EXPECT_EQ(train.size(), 75u);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.num_features(), 4u);
}

TEST(Dataset, MismatchedNamesRejected) {
  Dataset data;
  data.add_row(std::vector<double>{1.0, 2.0}, 3.0);
  EXPECT_THROW(data.set_feature_names({"only-one"}), Error);
}

// ----------------------------------------------------------- preprocess ----

TEST(StandardScaler, ZeroMeanUnitVariance) {
  Dataset data = make_synthetic(500, 3);
  StandardScaler scaler;
  scaler.fit(data.x());
  const Matrix z = scaler.transform(data.x());
  for (std::size_t j = 0; j < z.cols(); ++j) {
    double sum = 0, sumsq = 0;
    for (std::size_t i = 0; i < z.rows(); ++i) {
      sum += z(i, j);
      sumsq += z(i, j) * z(i, j);
    }
    const double mean = sum / z.rows();
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(sumsq / z.rows() - mean * mean, 1.0, 1e-6);
  }
}

TEST(StandardScaler, InverseTransformRoundTrips) {
  Dataset data = make_synthetic(50, 4);
  StandardScaler scaler;
  scaler.fit(data.x());
  const Matrix z = scaler.transform(data.x());
  const Matrix back = scaler.inverse_transform(z);
  for (std::size_t i = 0; i < back.rows(); ++i) {
    for (std::size_t j = 0; j < back.cols(); ++j) {
      EXPECT_NEAR(back(i, j), data.x()(i, j), 1e-9);
    }
  }
}

TEST(StandardScaler, ConstantColumnSafe) {
  Matrix x(4, 1, 7.0);
  StandardScaler scaler;
  scaler.fit(x);
  const auto z = scaler.transform_row(std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(z[0], 0.0);
}

TEST(StandardScaler, JsonRoundTrip) {
  Dataset data = make_synthetic(20, 5);
  StandardScaler scaler;
  scaler.fit(data.x());
  const StandardScaler back = StandardScaler::from_json(
      Json::parse(scaler.to_json().dump()));
  EXPECT_EQ(back.mean(), scaler.mean());
  EXPECT_EQ(back.stddev(), scaler.stddev());
}

TEST(OneHotEncoder, EncodesAndHandlesUnseen) {
  OneHotEncoder enc;
  const std::vector<std::string> values{"sort", "join", "sort", "pagerank"};
  enc.fit(values);
  EXPECT_EQ(enc.num_categories(), 3u);
  const auto v = enc.transform_one("pagerank");
  EXPECT_DOUBLE_EQ(v[enc.category_index("pagerank")], 1.0);
  double total = 0;
  for (const double x : v) total += x;
  EXPECT_DOUBLE_EQ(total, 1.0);
  // Unseen category -> all zeros, not an error.
  const auto unseen = enc.transform_one("wordcount");
  for (const double x : unseen) EXPECT_DOUBLE_EQ(x, 0.0);
  EXPECT_EQ(enc.category_index("wordcount"), -1);
}

TEST(OneHotEncoder, JsonRoundTrip) {
  OneHotEncoder enc;
  const std::vector<std::string> values{"b", "a"};
  enc.fit(values);
  const auto back =
      OneHotEncoder::from_json(Json::parse(enc.to_json().dump()));
  EXPECT_EQ(back.categories(), enc.categories());
}

// -------------------------------------------------------------- metrics ----

TEST(Metrics, Basics) {
  const std::vector<double> truth{1, 2, 3, 4};
  const std::vector<double> pred{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(rmse(truth, pred), 0.0);
  EXPECT_DOUBLE_EQ(mae(truth, pred), 0.0);
  EXPECT_DOUBLE_EQ(r2_score(truth, pred), 1.0);
  const std::vector<double> off{2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(rmse(truth, off), 1.0);
  EXPECT_DOUBLE_EQ(mae(truth, off), 1.0);
}

TEST(Metrics, R2OfMeanPredictorIsZero) {
  const std::vector<double> truth{1, 2, 3, 4, 5};
  const std::vector<double> mean_pred(5, 3.0);
  EXPECT_NEAR(r2_score(truth, mean_pred), 0.0, 1e-12);
}

TEST(Metrics, MapeSkipsZeros) {
  const std::vector<double> truth{0.0, 2.0};
  const std::vector<double> pred{5.0, 1.0};
  EXPECT_DOUBLE_EQ(mape(truth, pred), 0.5);
}

TEST(Metrics, TopkHitMin) {
  const std::vector<double> truth{5, 1, 3};  // fastest = index 1
  const std::vector<double> p1{10, 2, 7}, p2{2, 10, 7}, p3{2, 3, 7};
  EXPECT_TRUE(topk_hit_min(truth, p1, 1));   // picks 1
  EXPECT_FALSE(topk_hit_min(truth, p2, 1));  // picks 0
  EXPECT_TRUE(topk_hit_min(truth, p3, 2));   // 1 in top-2
}

TEST(Metrics, ArgsortStable) {
  const auto order = argsort_ascending(std::vector<double>{3, 1, 2, 1});
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 2, 0}));
}

// --------------------------------------------------------------- linear ----

TEST(Linear, RecoversCoefficientsWithoutInteraction) {
  const Dataset data = make_synthetic(2000, 7, 0.01, /*interaction=*/false);
  LinearRegression model;
  model.fit(data);
  ASSERT_EQ(model.coefficients().size(), 4u);
  EXPECT_NEAR(model.coefficients()[0], 3.0, 0.05);
  EXPECT_NEAR(model.coefficients()[1], -2.0, 0.05);
  EXPECT_NEAR(model.coefficients()[2], 0.5, 0.05);
  EXPECT_NEAR(model.coefficients()[3], 0.0, 0.05);
  EXPECT_NEAR(model.intercept(), 1.0, 0.1);
}

TEST(Linear, RidgeShrinksCoefficients) {
  const Dataset data = make_synthetic(100, 8, 0.1, false);
  LinearRegression ols{LinearParams{1e-8}};
  LinearRegression ridge{LinearParams{10.0}};
  ols.fit(data);
  ridge.fit(data);
  EXPECT_LT(std::abs(ridge.coefficients()[0]),
            std::abs(ols.coefficients()[0]));
}

TEST(Linear, HandlesCollinearFeaturesViaRidge) {
  Rng rng(11);
  Dataset data;
  for (int i = 0; i < 50; ++i) {
    const double x = rng.uniform(-1, 1);
    data.add_row(std::vector<double>{x, x}, 2.0 * x);  // perfectly collinear
  }
  LinearRegression model{LinearParams{1e-3}};
  model.fit(data);  // must not throw
  EXPECT_NEAR(model.predict_row(std::vector<double>{0.5, 0.5}), 1.0, 0.05);
}

TEST(Linear, SerializationRoundTrip) {
  const Dataset data = make_synthetic(200, 9);
  LinearRegression model;
  model.fit(data);
  const Json j = model_to_json(model);
  const auto restored = model_from_json(Json::parse(j.dump()));
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(restored->predict_row(data.row(i)),
                     model.predict_row(data.row(i)));
  }
}

TEST(Linear, ImportancesNormalized) {
  const Dataset data = make_synthetic(500, 10);
  LinearRegression model;
  model.fit(data);
  const auto imp = model.feature_importances();
  double total = 0;
  for (const double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(imp[0], imp[3]);  // x0 matters, x3 is noise
}

// ----------------------------------------------------------------- tree ----

TEST(Tree, FitsStepFunctionExactly) {
  Dataset data;
  for (int i = 0; i < 100; ++i) {
    const double x = i / 100.0;
    data.add_row(std::vector<double>{x}, x < 0.5 ? 1.0 : 5.0);
  }
  DecisionTreeRegressor tree{TreeParams{.max_depth = 3}};
  tree.fit(data);
  EXPECT_DOUBLE_EQ(tree.predict_row(std::vector<double>{0.2}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict_row(std::vector<double>{0.9}), 5.0);
  EXPECT_EQ(tree.num_leaves(), 2u);
}

TEST(Tree, RespectsMaxDepth) {
  const Dataset data = make_synthetic(300, 12);
  DecisionTreeRegressor tree{TreeParams{.max_depth = 2}};
  tree.fit(data);
  EXPECT_LE(tree.depth(), 2);
  EXPECT_LE(tree.num_leaves(), 4u);
}

TEST(Tree, MinSamplesLeafEnforced) {
  const Dataset data = make_synthetic(100, 13);
  TreeParams params;
  params.min_samples_leaf = 10;
  DecisionTreeRegressor tree{params};
  tree.fit(data);
  for (const auto& node : tree.nodes()) {
    if (node.is_leaf()) {
      EXPECT_GE(node.n_samples, 10);
    }
  }
}

TEST(Tree, PureNodeStopsSplitting) {
  Dataset data;
  for (int i = 0; i < 20; ++i) {
    data.add_row(std::vector<double>{static_cast<double>(i)}, 42.0);
  }
  DecisionTreeRegressor tree;
  tree.fit(data);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_row(std::vector<double>{3.0}), 42.0);
}

TEST(Tree, BeatsLinearOnInteraction) {
  const Dataset train = make_synthetic(3000, 14, 0.01);
  const Dataset test = make_synthetic(500, 15, 0.01);
  DecisionTreeRegressor tree{TreeParams{.max_depth = 10}};
  LinearRegression linear;
  tree.fit(train);
  linear.fit(train);
  std::vector<double> tree_pred, lin_pred;
  for (std::size_t i = 0; i < test.size(); ++i) {
    tree_pred.push_back(tree.predict_row(test.row(i)));
    lin_pred.push_back(linear.predict_row(test.row(i)));
  }
  EXPECT_LT(rmse(test.y(), tree_pred), rmse(test.y(), lin_pred));
}

TEST(Tree, SerializationRoundTrip) {
  const Dataset data = make_synthetic(200, 16);
  DecisionTreeRegressor tree;
  tree.fit(data);
  const auto restored = model_from_json(Json::parse(
      model_to_json(tree).dump()));
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(restored->predict_row(data.row(i)),
                     tree.predict_row(data.row(i)));
  }
}

// --------------------------------------------------------------- forest ----

TEST(Forest, FitsAndGeneralizes) {
  const Dataset train = make_synthetic(2000, 17);
  const Dataset test = make_synthetic(400, 18);
  ForestParams params;
  params.n_estimators = 60;
  RandomForestRegressor forest{params};
  forest.fit(train);
  std::vector<double> pred;
  for (std::size_t i = 0; i < test.size(); ++i) {
    pred.push_back(forest.predict_row(test.row(i)));
  }
  EXPECT_GT(r2_score(test.y(), pred), 0.9);
}

TEST(Forest, DeterministicForSeed) {
  const Dataset data = make_synthetic(300, 19);
  ForestParams params;
  params.n_estimators = 20;
  params.seed = 5;
  RandomForestRegressor a{params}, b{params};
  a.fit(data);
  b.fit(data);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_row(data.row(i)), b.predict_row(data.row(i)));
  }
}

TEST(Forest, DifferentSeedsDiffer) {
  const Dataset data = make_synthetic(300, 20);
  ForestParams pa, pb;
  pa.n_estimators = pb.n_estimators = 10;
  pa.seed = 1;
  pb.seed = 2;
  RandomForestRegressor a{pa}, b{pb};
  a.fit(data);
  b.fit(data);
  bool any_diff = false;
  for (std::size_t i = 0; i < 20 && !any_diff; ++i) {
    any_diff = a.predict_row(data.row(i)) != b.predict_row(data.row(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(Forest, OobScoreReasonable) {
  const Dataset data = make_synthetic(1500, 21);
  ForestParams params;
  params.n_estimators = 60;
  params.compute_oob = true;
  RandomForestRegressor forest{params};
  forest.fit(data);
  EXPECT_GT(forest.oob_r2(), 0.85);
  EXPECT_LE(forest.oob_r2(), 1.0);
}

TEST(Forest, ImportancesFavorInformativeFeatures) {
  const Dataset data = make_synthetic(2000, 22);
  ForestParams params;
  params.n_estimators = 40;
  RandomForestRegressor forest{params};
  forest.fit(data);
  const auto imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 4u);
  EXPECT_GT(imp[0], imp[3]);
  EXPECT_GT(imp[1], imp[3]);
  double total = 0;
  for (const double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Forest, SerializationRoundTrip) {
  const Dataset data = make_synthetic(300, 23);
  ForestParams params;
  params.n_estimators = 8;
  RandomForestRegressor forest{params};
  forest.fit(data);
  const auto restored = model_from_json(Json::parse(
      model_to_json(forest).dump()));
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(restored->predict_row(data.row(i)),
                     forest.predict_row(data.row(i)));
  }
}

// ------------------------------------------------------------------ gbt ----

TEST(Gbt, FitsAndGeneralizes) {
  const Dataset train = make_synthetic(2000, 24);
  const Dataset test = make_synthetic(400, 25);
  GbtParams params;
  params.n_rounds = 150;
  GradientBoostedTrees model{params};
  model.fit(train);
  std::vector<double> pred;
  for (std::size_t i = 0; i < test.size(); ++i) {
    pred.push_back(model.predict_row(test.row(i)));
  }
  EXPECT_GT(r2_score(test.y(), pred), 0.95);
}

TEST(Gbt, ShrinkageControlsStepSize) {
  const Dataset data = make_synthetic(500, 26);
  GbtParams slow, fast;
  slow.n_rounds = fast.n_rounds = 5;
  slow.learning_rate = 0.01;
  fast.learning_rate = 0.5;
  slow.early_stopping_rounds = fast.early_stopping_rounds = 0;
  GradientBoostedTrees a{slow}, b{fast};
  a.fit(data);
  b.fit(data);
  // After few rounds, the slow learner is still near the base score.
  double da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < 50; ++i) {
    da += std::abs(a.predict_row(data.row(i)) - a.base_score());
    db += std::abs(b.predict_row(data.row(i)) - b.base_score());
  }
  EXPECT_LT(da, db);
}

TEST(Gbt, EarlyStoppingTruncatesRounds) {
  const Dataset data = make_synthetic(600, 27, 0.5);  // noisy: overfits fast
  GbtParams params;
  params.n_rounds = 500;
  params.learning_rate = 0.3;
  params.early_stopping_rounds = 10;
  params.validation_fraction = 0.2;
  GradientBoostedTrees model{params};
  model.fit(data);
  EXPECT_LT(model.num_trees(), 500u);
  EXPECT_FALSE(std::isnan(model.best_validation_rmse()));
}

TEST(Gbt, RegularizationShrinksLeafValues) {
  const Dataset data = make_synthetic(500, 28);
  GbtParams weak, strong;
  weak.n_rounds = strong.n_rounds = 30;
  weak.reg_lambda = 0.0;
  strong.reg_lambda = 100.0;
  weak.early_stopping_rounds = strong.early_stopping_rounds = 0;
  GradientBoostedTrees a{weak}, b{strong};
  a.fit(data);
  b.fit(data);
  double da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < 50; ++i) {
    da += std::abs(a.predict_row(data.row(i)) - a.base_score());
    db += std::abs(b.predict_row(data.row(i)) - b.base_score());
  }
  EXPECT_GT(da, db);
}

TEST(Gbt, DeterministicForSeed) {
  const Dataset data = make_synthetic(300, 29);
  GbtParams params;
  params.n_rounds = 30;
  params.subsample = 0.7;
  params.colsample = 0.7;
  GradientBoostedTrees a{params}, b{params};
  a.fit(data);
  b.fit(data);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_row(data.row(i)), b.predict_row(data.row(i)));
  }
}

TEST(Gbt, SerializationRoundTrip) {
  const Dataset data = make_synthetic(300, 30);
  GbtParams params;
  params.n_rounds = 20;
  GradientBoostedTrees model{params};
  model.fit(data);
  const auto restored = model_from_json(Json::parse(
      model_to_json(model).dump()));
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(restored->predict_row(data.row(i)),
                     model.predict_row(data.row(i)));
  }
}

TEST(Gbt, InvalidParamsRejected) {
  EXPECT_THROW(GradientBoostedTrees(GbtParams{.n_rounds = 0}), Error);
  EXPECT_THROW(GradientBoostedTrees(GbtParams{.learning_rate = 0.0}), Error);
  EXPECT_THROW(GradientBoostedTrees(GbtParams{.subsample = 1.5}), Error);
}

// ------------------------------------------------------------- registry ----

TEST(Registry, CreatesAllRegisteredModels) {
  for (const auto& name : registered_regressors()) {
    const auto model = create_regressor(name);
    EXPECT_EQ(model->name(), name);
    EXPECT_FALSE(model->is_fitted());
  }
  EXPECT_THROW(create_regressor("svm"), Error);
}

TEST(Registry, ParamsApplied) {
  Json params = Json::object();
  params["n_estimators"] = 7;
  const auto model = create_regressor("random_forest", params);
  const auto* forest = dynamic_cast<RandomForestRegressor*>(model.get());
  ASSERT_NE(forest, nullptr);
  EXPECT_EQ(forest->params().n_estimators, 7);
}

TEST(Registry, SaveLoadFile) {
  const Dataset data = make_synthetic(200, 31);
  const auto model = create_regressor("linear");
  model->fit(data);
  save_model(*model, "/tmp/lts_test_model.json");
  const auto restored = load_model("/tmp/lts_test_model.json");
  EXPECT_EQ(restored->name(), "linear");
  EXPECT_DOUBLE_EQ(restored->predict_row(data.row(0)),
                   model->predict_row(data.row(0)));
}

// ------------------------------------------------------------ log target ----

TEST(LogTarget, PredictsInOriginalScale) {
  Rng rng(32);
  Dataset data;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 3.0);
    data.add_row(std::vector<double>{x}, std::exp(x));  // log-linear truth
  }
  LogTargetRegressor model(create_regressor("linear"));
  model.fit(data);
  EXPECT_NEAR(model.predict_row(std::vector<double>{2.0}), std::exp(2.0),
              0.5);
}

TEST(LogTarget, RejectsNonPositiveTargets) {
  Dataset data;
  data.add_row(std::vector<double>{1.0}, 0.0);
  data.add_row(std::vector<double>{2.0}, 1.0);
  LogTargetRegressor model(create_regressor("linear"));
  EXPECT_THROW(model.fit(data), Error);
}

TEST(LogTarget, RegistryWrapAndSerialize) {
  Json params = Json::object();
  params["log_target"] = true;
  const auto model = create_regressor("linear", params);
  EXPECT_NE(dynamic_cast<LogTargetRegressor*>(model.get()), nullptr);

  Rng rng(33);
  Dataset data;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0.0, 2.0);
    data.add_row(std::vector<double>{x}, 1.0 + x);
  }
  model->fit(data);
  const auto restored = model_from_json(Json::parse(
      model_to_json(*model).dump()));
  EXPECT_NE(dynamic_cast<LogTargetRegressor*>(restored.get()), nullptr);
  EXPECT_DOUBLE_EQ(restored->predict_row(data.row(0)),
                   model->predict_row(data.row(0)));
}

// ------------------------------------------------------------- validate ----

TEST(Validate, KfoldPartitionsExactly) {
  Rng rng(34);
  const auto folds = kfold_indices(100, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(100, 0);
  for (const auto& [train, test] : folds) {
    EXPECT_EQ(train.size() + test.size(), 100u);
    for (const auto i : test) ++seen[i];
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Validate, CrossValidateSaneNumbers) {
  const Dataset data = make_synthetic(600, 35, 0.1, false);
  const auto cv = cross_validate(
      [] { return create_regressor("linear"); }, data, 4);
  EXPECT_EQ(cv.fold_rmse.size(), 4u);
  EXPECT_NEAR(cv.mean_rmse, 0.1, 0.05);
  EXPECT_GT(cv.mean_r2, 0.95);
}

TEST(Validate, GridSearchPicksBetterParams) {
  const Dataset data = make_synthetic(800, 36);
  std::vector<Json> grid;
  {
    Json shallow = Json::object();
    shallow["max_depth"] = 1;
    grid.push_back(shallow);
    Json deep = Json::object();
    deep["max_depth"] = 8;
    grid.push_back(deep);
  }
  const auto result = grid_search(
      [](const Json& p) { return create_regressor("decision_tree", p); },
      grid, data, 3);
  EXPECT_EQ(result.best_params.at("max_depth").as_int(), 8);
  EXPECT_EQ(result.all.size(), 2u);
}

}  // namespace
}  // namespace lts::ml

// ---------------------------------------------------------- uncertainty ----

namespace lts::ml {
namespace {

TEST(Uncertainty, PointModelsReportZeroSpread) {
  const Dataset data = make_synthetic(200, 40);
  for (const std::string name : {"linear", "decision_tree", "xgboost"}) {
    const auto model = create_regressor(name);
    model->fit(data);
    const auto p = model->predict_with_uncertainty(data.row(0));
    EXPECT_DOUBLE_EQ(p.stddev, 0.0) << name;
    EXPECT_DOUBLE_EQ(p.mean, model->predict_row(data.row(0))) << name;
  }
}

TEST(Uncertainty, ForestSpreadIsMeaningful) {
  const Dataset data = make_synthetic(500, 41, 0.3);
  ForestParams params;
  params.n_estimators = 50;
  RandomForestRegressor forest{params};
  forest.fit(data);
  const auto in_dist = forest.predict_with_uncertainty(data.row(0));
  EXPECT_DOUBLE_EQ(in_dist.mean, forest.predict_row(data.row(0)));
  EXPECT_GT(in_dist.stddev, 0.0);
  // Far outside the training range the trees disagree at least as much.
  const std::vector<double> far{50.0, -50.0, 100.0, 0.0};
  const auto out_dist = forest.predict_with_uncertainty(far);
  EXPECT_GE(out_dist.stddev, 0.0);
}

TEST(Uncertainty, LogTargetTransformsSpread) {
  Rng rng(42);
  Dataset data;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0.0, 2.0);
    data.add_row(std::vector<double>{x}, std::exp(x + 0.1 * rng.normal()));
  }
  Json params = Json::object();
  params["log_target"] = true;
  params["n_estimators"] = 30;
  const auto model = create_regressor("random_forest", params);
  model->fit(data);
  const std::vector<double> x{1.0};
  const auto p = model->predict_with_uncertainty(x);
  EXPECT_NEAR(p.mean, model->predict_row(x), 1e-9);
  EXPECT_GT(p.stddev, 0.0);
  // Spread is in original (seconds) scale: same order as the mean's noise.
  EXPECT_LT(p.stddev, p.mean);
}

}  // namespace
}  // namespace lts::ml

// ------------------------------------------------------------- analysis ----

#include "ml/analysis.hpp"

namespace lts::ml {
namespace {

TEST(Analysis, PermutationImportanceFindsRealFeatures) {
  const Dataset train = make_synthetic(1500, 50);
  const Dataset test = make_synthetic(400, 51);
  ForestParams params;
  params.n_estimators = 40;
  RandomForestRegressor forest{params};
  forest.fit(train);
  const auto imp = permutation_importance(forest, test);
  ASSERT_EQ(imp.importance.size(), 4u);
  EXPECT_GT(imp.baseline_rmse, 0.0);
  // x0, x1 matter; x3 is pure noise.
  EXPECT_GT(imp.importance[0], 5.0 * imp.importance[3] + 1e-6);
  EXPECT_GT(imp.importance[1], 5.0 * imp.importance[3] + 1e-6);
}

TEST(Analysis, PermutationImportanceDeterministic) {
  const Dataset data = make_synthetic(300, 52);
  LinearRegression model;
  model.fit(data);
  const auto a = permutation_importance(model, data, 2, 5);
  const auto b = permutation_importance(model, data, 2, 5);
  EXPECT_EQ(a.importance, b.importance);
}

TEST(Analysis, PartialDependenceRecoversMonotoneEffect) {
  // y = 3*x0 ... : PD along x0 must be increasing.
  const Dataset data = make_synthetic(1000, 53, 0.05, false);
  ForestParams params;
  params.n_estimators = 40;
  RandomForestRegressor forest{params};
  forest.fit(data);
  const auto pd = partial_dependence(forest, data, 0, 8);
  ASSERT_GE(pd.grid.size(), 4u);
  EXPECT_LT(pd.response.front(), pd.response.back());
  // And flat along the noise feature x3.
  const auto pd_noise = partial_dependence(forest, data, 3, 8);
  const double swing =
      std::abs(pd_noise.response.back() - pd_noise.response.front());
  const double real_swing =
      std::abs(pd.response.back() - pd.response.front());
  EXPECT_LT(swing, real_swing / 3.0);
}

TEST(Analysis, InputValidation) {
  const Dataset data = make_synthetic(50, 54);
  LinearRegression unfitted;
  EXPECT_THROW(permutation_importance(unfitted, data), Error);
  LinearRegression model;
  model.fit(data);
  EXPECT_THROW(partial_dependence(model, data, 99), Error);
  EXPECT_THROW(partial_dependence(model, data, 0, 1), Error);
}

// --------------------------------------------- envelope and atomic save ----

/// make_synthetic with the target shifted positive, so log-target wrapping
/// (which requires y > 0) can fit the same problem.
Dataset make_positive_synthetic(std::size_t n, std::uint64_t seed) {
  Dataset raw = make_synthetic(n, seed);
  Dataset data;
  data.set_feature_names(raw.feature_names());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const auto row = raw.row(i);
    data.add_row(std::vector<double>(row.begin(), row.end()),
                 raw.target(i) + 10.0);
  }
  return data;
}

/// Small hyperparameters per family so the full registry sweep stays fast.
Json small_params(const std::string& name, bool log_target) {
  Json p = Json::object();
  p["log_target"] = log_target;
  if (name == "random_forest") p["n_estimators"] = 12;
  if (name == "xgboost") p["n_rounds"] = 15;
  return p;
}

TEST(Envelope, RoundTripsEveryFamilyPlainAndLogWrapped) {
  const Dataset data = make_positive_synthetic(150, 41);
  for (const auto& name : registered_regressors()) {
    for (const bool wrapped : {false, true}) {
      const auto model = create_regressor(name, small_params(name, wrapped));
      ASSERT_EQ(dynamic_cast<LogTargetRegressor*>(model.get()) != nullptr,
                wrapped)
          << name;
      model->fit(data);
      const std::string path = std::string("/tmp/lts_envelope_") + name +
                               (wrapped ? "_log" : "_plain") + ".json";
      save_model(*model, path, 7);
      const auto loaded = load_model_envelope(path);
      EXPECT_EQ(loaded.version, 7u) << name;
      EXPECT_EQ(loaded.model->name(), name);
      EXPECT_EQ(dynamic_cast<LogTargetRegressor*>(loaded.model.get()) !=
                    nullptr,
                wrapped)
          << name;
      // Bit-identical predictions after save -> load, not merely close.
      for (std::size_t i = 0; i < 25; ++i) {
        EXPECT_DOUBLE_EQ(loaded.model->predict_row(data.row(i)),
                         model->predict_row(data.row(i)))
            << name << (wrapped ? " (log)" : " (plain)") << " row " << i;
      }
      std::ifstream tmp(path + ".tmp");
      EXPECT_FALSE(tmp.good()) << "atomic save left " << path << ".tmp";
      std::remove(path.c_str());
    }
  }
}

TEST(Envelope, VersionDefaultsToZeroAndRejectsNegative) {
  const Dataset data = make_synthetic(40, 42);
  LinearRegression model;
  model.fit(data);

  // model_to_json without a version and pre-versioning envelopes (no
  // model_version key at all) both read back as version 0.
  EXPECT_EQ(model_version_from_json(model_to_json(model)), 0u);
  Json legacy = Json::object();
  legacy["type"] = "linear";
  legacy["state"] = model.to_json();
  EXPECT_EQ(model_version_from_json(legacy), 0u);

  Json negative = model_to_json(model);
  negative["model_version"] = -3.0;
  EXPECT_THROW(model_version_from_json(negative), Error);
}

TEST(Envelope, LoadFailuresReportPathAndReason) {
  const auto expect_load_error = [](const std::string& path,
                                    const std::string& fragment) {
    try {
      load_model(path);
      FAIL() << "expected load_model(" << path << ") to throw";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(path), std::string::npos) << what;
      EXPECT_NE(what.find(fragment), std::string::npos) << what;
    }
  };

  const auto write_file = [](const std::string& path,
                             const std::string& text) {
    std::ofstream f(path, std::ios::trunc);
    f << text;
  };

  expect_load_error("/tmp/lts_definitely_missing_model.json", "cannot open");

  const std::string path = "/tmp/lts_corrupt_model.json";
  write_file(path, "{\"type\": \"linear\", \"state\":");  // truncated
  expect_load_error(path, "");
  write_file(path, "[1, 2, 3]");  // not an object
  expect_load_error(path, "expected a JSON object");
  write_file(path, "{\"state\": {}}");  // no type tag
  expect_load_error(path, "'type'");
  write_file(path, "{\"type\": \"linear\"}");  // no learned state
  expect_load_error(path, "'state'");
  write_file(path, "{\"type\": \"svm\", \"state\": {}}");  // unknown family
  expect_load_error(path, "unknown model name");
  std::remove(path.c_str());
}

TEST(Envelope, FailedSaveLeavesNoFiles) {
  const Dataset data = make_synthetic(40, 43);
  LinearRegression model;
  model.fit(data);
  const std::string path = "/tmp/lts_no_such_dir/model.json";
  EXPECT_THROW(save_model(model, path), Error);
  std::ifstream out(path);
  EXPECT_FALSE(out.good());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

// ----------------------------------------------------------------- refit ----

TEST(Refit, ForestWarmRefitIsDeterministicAndSerializesGeneration) {
  const Dataset data = make_synthetic(200, 44);
  const Dataset window = make_synthetic(80, 45);
  ForestParams params;
  params.n_estimators = 16;
  params.seed = 9;

  RandomForestRegressor a{params};
  a.fit(data);
  EXPECT_EQ(a.refit_generation(), 0u);
  // A serialized clone refit on the same window must land on the identical
  // model: refits draw per-tree seeds from the serialized generation.
  auto b = model_from_json(model_to_json(a));
  a.refit(window);
  EXPECT_EQ(a.refit_generation(), 1u);
  b->refit(window);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_row(window.row(i)), b->predict_row(window.row(i)));
  }
  EXPECT_EQ(a.num_trees(), static_cast<std::size_t>(params.n_estimators));

  const auto reloaded = model_from_json(model_to_json(a));
  const auto* forest =
      dynamic_cast<const RandomForestRegressor*>(reloaded.get());
  ASSERT_NE(forest, nullptr);
  EXPECT_EQ(forest->refit_generation(), 1u);
}

TEST(Refit, ForestUnfittedOrWidthChangeFallsBackToFullFit) {
  const Dataset data = make_synthetic(100, 46);
  ForestParams params;
  params.n_estimators = 8;
  RandomForestRegressor cold{params};
  cold.refit(data);  // never fitted: refit must behave like fit
  EXPECT_TRUE(cold.is_fitted());
  EXPECT_EQ(cold.refit_generation(), 0u);

  RandomForestRegressor fitted{params};
  fitted.fit(data);
  Dataset narrow;
  narrow.add_row(std::vector<double>{1.0}, 2.0);
  narrow.add_row(std::vector<double>{2.0}, 3.0);
  narrow.add_row(std::vector<double>{3.0}, 4.0);
  narrow.add_row(std::vector<double>{4.0}, 5.0);
  fitted.refit(narrow);  // feature width changed: full retrain
  EXPECT_EQ(fitted.refit_generation(), 0u);
  EXPECT_DOUBLE_EQ(fitted.predict_row(std::vector<double>{1.0}),
                   fitted.predict_row(std::vector<double>{1.0}));
}

TEST(Refit, GbtContinuesBoostingThenResetsWhenOversized) {
  const Dataset data = make_synthetic(200, 47);
  GbtParams params;
  params.n_rounds = 16;
  params.early_stopping_rounds = 0;
  GradientBoostedTrees model{params};
  model.fit(data);
  const std::size_t base = model.num_trees();

  const Dataset window = make_synthetic(60, 48);
  model.refit(window);
  EXPECT_EQ(model.num_trees(), base + 4);  // n_rounds / 4 extra rounds

  // Determinism: a serialized clone refit on the same window matches.
  GradientBoostedTrees twin{params};
  twin.fit(data);
  twin.refit(window);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(model.predict_row(window.row(i)),
                     twin.predict_row(window.row(i)));
  }

  // Keep refitting: once the ensemble hits the 3x n_rounds cap it resets
  // to a from-scratch fit instead of growing without bound.
  for (int i = 0; i < 16; ++i) model.refit(window);
  EXPECT_LE(model.num_trees(), static_cast<std::size_t>(3 * params.n_rounds));
}

// Complete binary tree with `depth` levels of internal nodes in heap
// layout: 2^(depth+1)-1 nodes total. Thresholds and leaf values vary
// deterministically so different inputs reach different leaves.
std::vector<TreeNode> complete_tree(int depth, int num_features) {
  const std::size_t n = (std::size_t{2} << depth) - 1;
  const std::size_t first_leaf = (std::size_t{1} << depth) - 1;
  std::vector<TreeNode> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& node = nodes[i];
    node.n_samples = 1;
    if (i < first_leaf) {
      node.feature = static_cast<int>(i % num_features);
      node.threshold = static_cast<double>((i * 37) % 101) / 50.5 - 1.0;
      node.left = static_cast<int>(2 * i + 1);
      node.right = static_cast<int>(2 * i + 2);
    } else {
      node.value = static_cast<double>(i) * 1e-3;
    }
  }
  return nodes;
}

Json tree_to_json(const std::vector<TreeNode>& nodes, int num_features) {
  Json j = Json::object();
  j["params"] = TreeParams{}.to_json();
  j["num_features"] = num_features;
  JsonArray arr;
  arr.reserve(nodes.size());
  for (const auto& node : nodes) {
    JsonArray fields;
    fields.emplace_back(node.feature);
    fields.emplace_back(node.threshold);
    fields.emplace_back(node.left);
    fields.emplace_back(node.right);
    fields.emplace_back(node.value);
    fields.emplace_back(node.n_samples);
    arr.emplace_back(std::move(fields));
  }
  j["nodes"] = Json(std::move(arr));
  j["importance"] =
      Json::from_doubles(std::vector<double>(num_features, 0.0));
  return j;
}

TEST(FlatEnsembleLimits, OversizedTreeIsRejectedAtTheCap) {
  // kMaxTreeNodes is the largest tree whose local child indices fit the
  // packed 16-bit fields. Exactly at the cap (a complete depth-14 tree,
  // 2^15-1 = 32767 nodes) flattening succeeds; one level deeper it must
  // refuse rather than truncate.
  FlatEnsemble flat;
  const auto at_cap = complete_tree(14, 4);
  ASSERT_EQ(at_cap.size(), FlatEnsemble::kMaxTreeNodes);
  EXPECT_TRUE(flat.try_add_tree(std::span<const TreeNode>(at_cap)));

  FlatEnsemble refused;
  const auto oversized = complete_tree(15, 4);
  ASSERT_GT(oversized.size(), FlatEnsemble::kMaxTreeNodes);
  EXPECT_FALSE(refused.try_add_tree(std::span<const TreeNode>(oversized)));
  EXPECT_TRUE(refused.empty());
}

TEST(FlatEnsembleLimits, OversizedTreeScalarFallbackMatchesBitForBit) {
  // A deserialized tree too large to flatten must still serve batched
  // predictions — through the scalar walk — and produce the exact doubles
  // predict_row does. 65535 nodes exceeds kMaxTreeNodes so rebuild_flat
  // bails out and predict_batch takes the fallback path.
  DecisionTreeRegressor tree;
  tree.from_json(tree_to_json(complete_tree(15, 4), 4));
  EXPECT_EQ(tree.depth(), 15);
  EXPECT_EQ(tree.num_leaves(), std::size_t{1} << 15);

  const std::size_t rows = 64, cols = 4;
  Rng rng(0xF1A7);
  std::vector<double> x(rows * cols);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> batched(rows);
  tree.predict_batch(x, rows, cols, batched);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const double> row(x.data() + r * cols, cols);
    EXPECT_EQ(batched[r], tree.predict_row(row)) << "row " << r;
  }

  // Same walk under the flat engine: a tree exactly at the cap must agree
  // with its own scalar path too (both engines, one contract).
  DecisionTreeRegressor small;
  small.from_json(tree_to_json(complete_tree(14, 4), 4));
  small.predict_batch(x, rows, cols, batched);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const double> row(x.data() + r * cols, cols);
    EXPECT_EQ(batched[r], small.predict_row(row)) << "row " << r;
  }
}

TEST(TreeSplit, AdjacentDoubleThresholdStillPartitions) {
  // Regression test: the midpoint of two adjacent doubles can round up
  // onto the right value; the `<=` partition would then send every row
  // left and die on an internal assert. 0x1.fffffffffffffp0 and 2.0 are
  // adjacent, and their midpoint rounds (to even) exactly onto 2.0.
  const double left = std::nextafter(2.0, 0.0);
  ASSERT_EQ((left + 2.0) / 2.0, 2.0);
  Dataset data;
  for (int rep = 0; rep < 2; ++rep) {
    data.add_row(std::vector<double>{left}, 1.0);
    data.add_row(std::vector<double>{2.0}, 5.0);
  }
  TreeParams params;
  params.min_samples_leaf = 1;
  params.min_samples_split = 2;
  DecisionTreeRegressor tree{params};
  tree.fit(data);
  EXPECT_DOUBLE_EQ(tree.predict_row(std::vector<double>{left}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict_row(std::vector<double>{2.0}), 5.0);
}

}  // namespace
}  // namespace lts::ml
