// Regression tests for parallel-training determinism.
//
// RandomForestRegressor::fit farms trees out to a thread pool; each tree's
// Rng is derived from (forest seed, tree index) rather than from any shared
// stream, so the fitted model must be byte-identical no matter how many
// workers the pool has or how their execution interleaves. These tests pin
// that property down: a pool of 1 (fully sequential), a pool of 2, and a
// pool sized to the machine must all produce the same serialized model and
// the same predictions.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/forest.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lts::ml {
namespace {

Dataset make_synthetic(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.set_feature_names({"x0", "x1", "x2", "x3"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1, 1);
    const double x1 = rng.uniform(-1, 1);
    const double x2 = rng.uniform(0, 2);
    const double x3 = rng.uniform(-1, 1);
    const double y =
        3.0 * x0 - 2.0 * x1 + 0.5 * x2 + 2.0 * x0 * x1 + 0.05 * rng.normal();
    data.add_row(std::vector<double>{x0, x1, x2, x3}, y);
  }
  return data;
}

ForestParams test_params() {
  ForestParams params;
  params.n_estimators = 24;
  params.seed = 97;
  params.compute_oob = true;
  return params;
}

// Fits a fresh forest on a pool with `workers` threads and returns the
// serialized model plus its predictions on a probe set.
struct FitResult {
  std::string serialized;
  std::vector<double> predictions;
  double oob_r2 = 0.0;
};

FitResult fit_with_pool_size(const Dataset& train, const Dataset& probe,
                             std::size_t workers) {
  ThreadPool pool(workers);
  RandomForestRegressor forest(test_params());
  forest.set_thread_pool(&pool);
  forest.fit(train);
  FitResult out;
  out.serialized = forest.to_json().dump();
  for (std::size_t i = 0; i < probe.size(); ++i) {
    out.predictions.push_back(forest.predict_row(probe.row(i)));
  }
  out.oob_r2 = forest.oob_r2();
  return out;
}

TEST(ForestDeterminism, IndependentOfThreadPoolSize) {
  const Dataset train = make_synthetic(300, 11);
  const Dataset probe = make_synthetic(40, 12);

  const FitResult sequential = fit_with_pool_size(train, probe, 1);
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (const std::size_t workers : {std::size_t{2}, hw}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const FitResult parallel = fit_with_pool_size(train, probe, workers);
    // Byte-identical serialization: same trees, same splits, same leaves.
    EXPECT_EQ(parallel.serialized, sequential.serialized);
    ASSERT_EQ(parallel.predictions.size(), sequential.predictions.size());
    for (std::size_t i = 0; i < sequential.predictions.size(); ++i) {
      EXPECT_EQ(parallel.predictions[i], sequential.predictions[i]);
    }
    EXPECT_EQ(parallel.oob_r2, sequential.oob_r2);
  }
}

TEST(ForestDeterminism, RepeatedFitsOnSamePoolAgree) {
  // Determinism must also hold run-to-run, not just across pool sizes:
  // re-fitting on the same (contended) pool interleaves differently each
  // time, yet the model may not change.
  const Dataset train = make_synthetic(300, 21);
  const Dataset probe = make_synthetic(20, 22);
  const FitResult first = fit_with_pool_size(train, probe, 4);
  const FitResult second = fit_with_pool_size(train, probe, 4);
  EXPECT_EQ(first.serialized, second.serialized);
  EXPECT_EQ(first.predictions, second.predictions);
}

TEST(ForestDeterminism, NullPoolRestoresGlobalAndStaysDeterministic) {
  const Dataset train = make_synthetic(200, 31);
  const Dataset probe = make_synthetic(10, 32);

  RandomForestRegressor via_global(test_params());
  via_global.fit(train);

  ThreadPool pool(3);
  RandomForestRegressor via_custom(test_params());
  via_custom.set_thread_pool(&pool);
  via_custom.set_thread_pool(nullptr);  // back to the global pool
  via_custom.fit(train);

  EXPECT_EQ(via_custom.to_json().dump(), via_global.to_json().dump());
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(via_custom.predict_row(probe.row(i)),
              via_global.predict_row(probe.row(i)));
  }
}

}  // namespace
}  // namespace lts::ml
