// Fault-injection subsystem: injector primitives, scheduled FaultSpecs,
// telemetry degradation, and the scheduler's graceful-degradation policies.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "core/scheduler.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "spark/runtime.hpp"
#include "spark/workloads.hpp"
#include "telemetry/exporters.hpp"
#include "util/stats.hpp"

namespace {

using namespace lts;

/// Fitted model that predicts the same duration everywhere: rankings become
/// pure tie-breaks, which makes demotion and fallback decisions explicit.
class ConstantModel : public ml::Regressor {
 public:
  void fit(const ml::Dataset&) override {}
  double predict_row(std::span<const double>) const override { return 1.0; }
  bool is_fitted() const override { return true; }
  std::string name() const override { return "constant"; }
  Json to_json() const override { return Json::object(); }
  void from_json(const Json&) override {}
};

spark::JobConfig small_job() {
  spark::JobConfig config;
  config.app = spark::AppType::kSort;
  config.input_records = 1000000;
  config.record_bytes = 200.0;
  config.executors = 2;
  config.validate();
  return config;
}

TEST(FaultSpecJson, RoundTripsEveryKind) {
  const std::vector<fault::FaultSpec> schedule = {
      {fault::FaultKind::kNodeCrash, "node-3", 50.0, 40.0, 1.0},
      {fault::FaultKind::kLinkDegrade, "ucsd:fiu", 60.0, 30.0, 0.8},
      {fault::FaultKind::kRttSpike, "sri:fiu", 70.0, 0.0, 0.025},
      {fault::FaultKind::kSitePartition, "sri", 80.0, 15.0, 1.0},
      {fault::FaultKind::kExporterSilence, "node-1", 90.0, 20.0, 1.0},
      {fault::FaultKind::kExporterDelay, "node-2", 100.0, 25.0, 12.0},
      {fault::FaultKind::kRetrainFail, "", 110.0, 60.0, 1.0},
      {fault::FaultKind::kNodeLinkDegrade, "node-4", 120.0, 0.0, 0.6},
  };
  const std::string text = fault::faults_to_json(schedule).dump();
  const auto parsed = fault::faults_from_json(Json::parse(text));
  ASSERT_EQ(parsed.size(), schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, schedule[i].kind);
    EXPECT_EQ(parsed[i].target, schedule[i].target);
    EXPECT_DOUBLE_EQ(parsed[i].at, schedule[i].at);
    EXPECT_DOUBLE_EQ(parsed[i].duration, schedule[i].duration);
    EXPECT_DOUBLE_EQ(parsed[i].severity, schedule[i].severity);
  }
}

TEST(FaultSpecJson, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::fault_kind_from_string("meteor_strike"), Error);
  EXPECT_THROW(fault::fault_from_json(Json::parse("[1,2]")), Error);
  EXPECT_THROW(fault::faults_from_json(Json::parse("{}")), Error);
}

TEST(FaultSchedule, DeterministicAndRateScaled) {
  const auto spec = cluster::paper_cluster_spec();
  exp::FaultScheduleOptions options;
  options.faults_per_100s = 2.0;
  const auto a = exp::generate_fault_schedule(spec, 42, options);
  const auto b = exp::generate_fault_schedule(spec, 42, options);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
    EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
    EXPECT_DOUBLE_EQ(a[i].severity, b[i].severity);
  }
  // Higher rate -> proportionally more faults.
  options.faults_per_100s = 8.0;
  EXPECT_GT(exp::generate_fault_schedule(spec, 42, options).size(),
            a.size() * 2);
  // Crash-free schedules for counterfactual experiments.
  EXPECT_FALSE(options.include_crashes);
  for (const auto& fault : exp::generate_fault_schedule(spec, 42, options)) {
    EXPECT_NE(fault.kind, fault::FaultKind::kNodeCrash);
    EXPECT_GE(fault.at, options.start);
    EXPECT_GE(fault.duration, 5.0);
  }
}

TEST(DriftSchedule, FallsBackToNodeLinkDegradeWithoutWanLinks) {
  // A single-site shape has no pairwise WAN links; the staircase must
  // degrade gracefully to intra-site node-access drift instead of failing.
  const auto spec = exp::scaled_cluster_spec(1, 4);
  ASSERT_TRUE(spec.wan_links.empty());
  exp::DriftScheduleOptions options;
  options.drift_links = 2;
  const auto schedule = exp::generate_drift_schedule(spec, 7, options);
  ASSERT_EQ(schedule.size(),
            static_cast<std::size_t>(options.steps) * 2);
  double prev_severity = 0.0;
  for (const auto& f : schedule) {
    EXPECT_EQ(f.kind, fault::FaultKind::kNodeLinkDegrade);
    EXPECT_EQ(f.target.rfind("node-", 0), 0u) << f.target;
    EXPECT_DOUBLE_EQ(f.duration, 0.0);  // drift never heals
    EXPECT_GE(f.severity, prev_severity);
    prev_severity = f.severity;
  }
  EXPECT_DOUBLE_EQ(schedule.back().severity, options.max_capacity_cut);

  // Deterministic: same (spec, seed, options) -> same schedule.
  const auto again = exp::generate_drift_schedule(spec, 7, options);
  ASSERT_EQ(again.size(), schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(again[i].target, schedule[i].target);
    EXPECT_DOUBLE_EQ(again[i].severity, schedule[i].severity);
  }

  // More drift links than nodes: clamped to the node count, not an error.
  options.drift_links = 64;
  const auto clamped = exp::generate_drift_schedule(spec, 7, options);
  EXPECT_EQ(clamped.size(), static_cast<std::size_t>(options.steps) * 4);

  // Nothing can drift when the only available component is zeroed out.
  options.max_capacity_cut = 0.0;
  EXPECT_THROW(exp::generate_drift_schedule(spec, 7, options), Error);
}

TEST(FaultInjector, NodeLinkDegradeCutsAccessCapacityAndRestores) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::paper_cluster_spec());
  fault::FaultInjector injector(engine, cluster);

  const std::size_t node = cluster.node_index("node-2");
  const auto up = cluster.node_uplink(node);
  const auto down = cluster.node_downlink(node);
  const Rate up0 = cluster.topology().link(up).capacity;
  const Rate down0 = cluster.topology().link(down).capacity;

  injector.degrade_node_link("node-2", 0.6);
  EXPECT_NEAR(cluster.topology().link(up).capacity, up0 * 0.4, 1.0);
  EXPECT_NEAR(cluster.topology().link(down).capacity, down0 * 0.4, 1.0);
  // Re-injection at a new severity works off the pristine capacity — the
  // drift staircase re-injects every step and must not compound.
  injector.degrade_node_link("node-2", 0.8);
  EXPECT_NEAR(cluster.topology().link(up).capacity, up0 * 0.2, 1.0);

  injector.restore_node_link("node-2");
  EXPECT_DOUBLE_EQ(cluster.topology().link(up).capacity, up0);
  EXPECT_DOUBLE_EQ(cluster.topology().link(down).capacity, down0);
  injector.restore_node_link("node-2");  // idempotent

  EXPECT_THROW(injector.degrade_node_link("node-2", 1.5), Error);
  EXPECT_THROW(injector.degrade_node_link("nowhere", 0.5), Error);
}

TEST(FaultInjector, SitePartitionStallsCrossSiteFlowsAndHeals) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::paper_cluster_spec());
  fault::FaultInjector injector(engine, cluster);

  const auto v_ucsd = cluster.node(0).vertex();   // node-1 @ ucsd
  const auto v_ucsd2 = cluster.node(1).vertex();  // node-2 @ ucsd
  const auto v_fiu = cluster.node(2).vertex();    // node-3 @ fiu

  bool cross_done = false;
  const auto cross = cluster.flows().start(v_ucsd, v_fiu, 1e9,
                                           [&] { cross_done = true; });
  engine.run_until(2.0);
  const double before = cluster.flows().info(cross).transferred;
  EXPECT_GT(before, 10e6);  // cross-site flow is making real progress

  const SimTime rtt_before = cluster.flows().current_rtt(v_ucsd, v_fiu);
  injector.partition_site("fiu");
  // The stalled flow saturates the dead link, so measured RTT inflates by
  // the queueing model's full penalty in the loaded direction (~30 ms).
  const SimTime rtt_during = cluster.flows().current_rtt(v_ucsd, v_fiu);
  EXPECT_GT(rtt_during, rtt_before + 0.025);

  // 100 simulated seconds of partition move only a trickle of bytes.
  engine.run_until(102.0);
  EXPECT_FALSE(cross_done);
  EXPECT_LT(cluster.flows().info(cross).transferred - before, 1e3);

  // Intra-site traffic is unaffected.
  bool local_done = false;
  cluster.flows().start(v_ucsd, v_ucsd2, 50e6, [&] { local_done = true; });
  engine.run_until(110.0);
  EXPECT_TRUE(local_done);

  injector.heal_site("fiu");
  engine.run_until(130.0);
  EXPECT_TRUE(cross_done);
  EXPECT_EQ(injector.injected(), 0);  // direct primitives bypass the counter
}

TEST(FaultInjector, WanDegradeAndRttSpikeRestoreExactly) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::paper_cluster_spec());
  fault::FaultInjector injector(engine, cluster);

  net::LinkId wan = -1;
  for (const auto& link : cluster.wan_links()) {
    if ((link.site_a == "ucsd" && link.site_b == "fiu") ||
        (link.site_a == "fiu" && link.site_b == "ucsd")) {
      wan = link.forward;
    }
  }
  ASSERT_GE(wan, 0);
  const Rate cap0 = cluster.topology().link(wan).capacity;
  const SimTime delay0 = cluster.topology().link(wan).prop_delay;

  injector.degrade_wan_link("ucsd", "fiu", 0.75);
  EXPECT_NEAR(cluster.topology().link(wan).capacity, cap0 * 0.25, 1.0);
  // A second, overlapping fault must not compound off the degraded value.
  injector.spike_wan_rtt("ucsd", "fiu", 0.020);
  EXPECT_NEAR(cluster.topology().link(wan).prop_delay, delay0 + 0.020, 1e-9);
  injector.degrade_wan_link("ucsd", "fiu", 0.75);
  EXPECT_NEAR(cluster.topology().link(wan).capacity, cap0 * 0.25, 1.0);

  injector.restore_wan_link("ucsd", "fiu");
  EXPECT_DOUBLE_EQ(cluster.topology().link(wan).capacity, cap0);
  EXPECT_DOUBLE_EQ(cluster.topology().link(wan).prop_delay, delay0);
  EXPECT_THROW(injector.degrade_wan_link("ucsd", "nowhere", 0.5), Error);
}

TEST(FaultInjector, CrashStopsTelemetryPingsAndReadiness) {
  exp::EnvOptions options;
  options.faults.push_back(
      {fault::FaultKind::kNodeCrash, "node-3", 50.0, 40.0, 1.0});
  exp::SimEnv env(21, options);
  env.warmup();
  env.engine().run_until(80.0);

  const std::size_t idx = env.cluster().node_index("node-3");
  EXPECT_TRUE(env.cluster().node_down(idx));
  EXPECT_FALSE(env.api().node("node-3").ready);
  EXPECT_EQ(env.fault_injector().injected(), 1);
  EXPECT_EQ(env.fault_injector().recovered(), 0);

  // The kube scheduler refuses the crashed node outright.
  const auto kube = env.kube_ranking(small_job());
  for (const auto& scored : kube.ranking) EXPECT_NE(scored.name, "node-3");

  // Its exporter heartbeat froze at the crash instant...
  auto snapshot = env.snapshot();
  const auto& row = snapshot.by_name("node-3");
  EXPECT_TRUE(row.has_data);
  EXPECT_LE(row.last_seen, 50.0);
  EXPECT_EQ(telemetry::annotate_staleness(snapshot, 10.0), 1);
  EXPECT_TRUE(snapshot.by_name("node-3").stale);
  // ...and the ping mesh stopped probing it in either direction.
  EXPECT_LT(env.tsdb()
                .latest_time(telemetry::kPingRttMetric,
                             {{"src", "node-1"}, {"dst", "node-3"}})
                .value_or(0.0),
            51.0);

  // Recovery at t=90: readiness, scrapes, and pings all resume.
  env.engine().run_until(120.0);
  EXPECT_FALSE(env.cluster().node_down(idx));
  EXPECT_TRUE(env.api().node("node-3").ready);
  EXPECT_EQ(env.fault_injector().recovered(), 1);
  auto after = env.snapshot();
  EXPECT_GT(after.by_name("node-3").last_seen, 90.0);
  EXPECT_EQ(telemetry::annotate_staleness(after, 10.0), 0);
  EXPECT_GT(env.tsdb()
                .latest_time(telemetry::kPingRttMetric,
                             {{"src", "node-1"}, {"dst", "node-3"}})
                .value_or(0.0),
            90.0);
}

TEST(FaultInjector, CrashRecoverResetsNicCountersWithoutNegativeRate) {
  // Regression for the counter-reset bug: a recovered node's NIC counters
  // restart from zero, so a rate window straddling the reboot used to
  // compute (small - large)/dt and report a huge negative "throughput".
  // With Prometheus reset semantics the rate stays nonnegative and the
  // reset is counted in telemetry_counter_resets_total.
  auto& registry = obs::MetricsRegistry::global();
  auto& resets = obs::counter("telemetry_counter_resets_total");
  registry.set_enabled(true);
  const double resets_before = resets.value();

  exp::EnvOptions options;
  // Crash shorter than the 30 s rate window so the post-recovery snapshot
  // sees both pre-crash (high counter) and post-reset (low) samples.
  // node-2 carries steady background traffic in both directions with this
  // seed, so its NIC counters are well into the gigabytes before the crash.
  options.faults.push_back(
      {fault::FaultKind::kNodeCrash, "node-2", 50.0, 10.0, 1.0});
  exp::SimEnv env(21, options);
  env.warmup();
  env.engine().run_until(65.0);

  EXPECT_FALSE(env.cluster().node_down(env.cluster().node_index("node-2")));
  // The reboot actually zeroed the counters.
  const double tx_now = env.cluster().flows().host_tx_bytes(
      env.cluster().node(env.cluster().node_index("node-2")).vertex());
  EXPECT_LT(tx_now, 1e9);  // far less than 60 s of accumulated traffic

  const auto snapshot = env.snapshot();
  registry.set_enabled(false);
  for (const auto& row : snapshot.nodes) {
    EXPECT_GE(row.tx_rate, 0.0) << row.node;
    EXPECT_GE(row.rx_rate, 0.0) << row.node;
  }
  EXPECT_GT(resets.value(), resets_before);
}

TEST(TelemetryEpoch, EveryFaultMutationPathBumpsOrDefersToScrape) {
  // Cached snapshots key on Tsdb::epoch(). Fault paths that change how
  // existing telemetry must be interpreted — a node gone or rebooted (its
  // cumulative counters restarting through reset_host_counters), an
  // exporter muted, delayed, or restored — must bump the epoch at the
  // moment they mutate, not a scrape interval later.
  exp::SimEnv env(33);
  env.warmup();
  auto& injector = env.fault_injector();
  std::uint64_t last = env.tsdb().epoch();
  const auto expect_bump = [&](const char* what, const auto& mutate) {
    mutate();
    EXPECT_GT(env.tsdb().epoch(), last) << what;
    last = env.tsdb().epoch();
  };
  expect_bump("crash_node", [&] { injector.crash_node("node-1"); });
  expect_bump("recover_node (counters reset via reset_host_counters)",
              [&] { injector.recover_node("node-1"); });
  expect_bump("silence_exporter",
              [&] { injector.silence_exporter("node-2"); });
  expect_bump("unsilence_exporter",
              [&] { injector.unsilence_exporter("node-2"); });
  expect_bump("delay_exporter",
              [&] { injector.delay_exporter("node-3", 5.0); });
  expect_bump("undelay_exporter",
              [&] { injector.undelay_exporter("node-3"); });

  // Pure capacity/delay mutations intentionally do NOT bump: they change
  // the network, not the meaning of already-ingested samples. Their effect
  // reaches the TSDB through the next scrape's append, which bumps then.
  injector.degrade_wan_link("ucsd", "fiu", 0.5);
  injector.spike_wan_rtt("ucsd", "fiu", 0.010);
  injector.restore_wan_link("ucsd", "fiu");
  injector.degrade_node_link("node-4", 0.5);
  injector.restore_node_link("node-4");
  injector.partition_site("sri");
  injector.heal_site("sri");
  EXPECT_EQ(env.tsdb().epoch(), last);
}

TEST(Degradation, UndelayingExporterMidStreamDropsLateSamples) {
  // While a report-delay fault is active, measured samples sit in flight
  // for `severity` seconds. When the fault expires, fresh samples land
  // immediately — before the still-queued delayed ones, which then arrive
  // bearing older timestamps. The TSDB must drop and count them (it used
  // to abort ingestion on any out-of-order append).
  auto& registry = obs::MetricsRegistry::global();
  auto& dropped = obs::counter("telemetry_out_of_order_dropped_total");
  registry.set_enabled(true);
  const double dropped_before = dropped.value();

  exp::EnvOptions options;
  options.faults.push_back(
      {fault::FaultKind::kExporterDelay, "node-2", 44.0, 40.0, 15.0});
  exp::SimEnv env(9, options);
  env.warmup();
  env.engine().run_until(110.0);  // fault expires at 84; pipeline drains
  registry.set_enabled(false);

  EXPECT_GT(env.tsdb().num_samples_dropped(), 0u);
  EXPECT_GT(dropped.value(), dropped_before);
  // The stream kept running and freshness recovered despite the drops.
  auto after = env.snapshot();
  EXPECT_GT(after.by_name("node-2").last_seen, 95.0);
  EXPECT_EQ(telemetry::annotate_staleness(after, 10.0), 0);
}

TEST(FaultInjector, NodeCrashMidJobStallsUntilRecovery) {
  const auto config = small_job();
  const std::uint64_t seed = 77;
  const std::uint64_t job_seed = 4242;
  const std::size_t driver = 0;                   // node-1
  const std::vector<std::size_t> executors{1, 2};  // node-2, node-3

  auto run_app = [&](exp::SimEnv& env, bool& done) {
    Rng dag_rng(job_seed * 0x2545f4914f6cdd1dULL + 0x9e37);
    auto dag = spark::build_dag(config, dag_rng,
                                env.options().workload_cost);
    Rng app_rng(job_seed * 0xda942042e4dd58b5ULL + 0x7f4a);
    auto app = std::make_unique<spark::SparkApp>(
        env.cluster(), config, std::move(dag), driver, executors, app_rng,
        env.options().runtime);
    app->submit([&done](const spark::AppResult&) { done = true; });
    return app;
  };

  // Healthy reference run.
  double healthy_duration = 0.0;
  {
    exp::SimEnv env(seed);
    env.warmup();
    bool done = false;
    auto app = run_app(env, done);
    const SimTime deadline = env.engine().now() + 1200.0;
    while (!done) {
      ASSERT_TRUE(env.engine().step());
      ASSERT_LE(env.engine().now(), deadline);
    }
    healthy_duration = app->result().duration();
    EXPECT_GT(healthy_duration, 8.0);  // long enough to crash mid-flight
  }

  // Identical run, but an executor node crashes mid-job: the job stalls
  // far past its healthy completion time, then finishes after recovery.
  exp::SimEnv env(seed);
  env.warmup();
  bool done = false;
  auto app = run_app(env, done);
  const SimTime submit = env.engine().now();
  env.engine().run_until(submit + 5.0);
  ASSERT_FALSE(done);
  env.fault_injector().crash_node("node-2");

  env.engine().run_until(submit + healthy_duration + 60.0);
  EXPECT_FALSE(done) << "job finished despite a crashed executor node";

  env.fault_injector().recover_node("node-2");
  const SimTime deadline = env.engine().now() + 1800.0;
  while (!done) {
    ASSERT_TRUE(env.engine().step());
    ASSERT_LE(env.engine().now(), deadline);
  }
  EXPECT_GT(app->result().duration(), healthy_duration + 50.0);
}

TEST(Degradation, SilencedExporterRowIsImputedAndDemoted) {
  exp::EnvOptions options;
  options.faults.push_back(
      {fault::FaultKind::kExporterSilence, "node-5", 45.0, 0.0, 1.0});
  exp::SimEnv env(33, options);
  env.warmup();
  env.engine().run_until(75.0);

  core::DegradationOptions degradation;
  degradation.enabled = true;
  degradation.max_staleness = 10.0;
  core::TelemetryFetcher fetcher(env.tsdb(), env.node_names(),
                                 env.options().snapshot, degradation);
  const auto snapshot = fetcher.fetch(env.engine().now());

  int stale_rows = 0;
  std::vector<double> fresh_cpu;
  for (const auto& row : snapshot.nodes) {
    if (row.stale) {
      ++stale_rows;
    } else {
      fresh_cpu.push_back(row.cpu_load);
    }
  }
  EXPECT_EQ(stale_rows, 1);
  const auto& stale = snapshot.by_name("node-5");
  EXPECT_TRUE(stale.stale);
  EXPECT_TRUE(stale.has_data);
  // Imputed telemetry sits inside the fresh rows' envelope (it is their
  // median), not at the frozen pre-silence values or zero.
  EXPECT_GE(stale.cpu_load, min_of(fresh_cpu));
  EXPECT_LE(stale.cpu_load, max_of(fresh_cpu));
  EXPECT_GT(stale.mem_available, 0.0);

  // With a tie-everything model, demotion alone decides: the stale node
  // ranks last, and the decision records it.
  core::FallbackOptions fallback;
  fallback.enabled = true;
  core::LtsScheduler scheduler(std::move(fetcher),
                               std::make_shared<ConstantModel>(),
                               core::FeatureSet::kTable1,
                               /*risk_aversion=*/0.0, fallback);
  const auto decision = scheduler.schedule(small_job(), env.engine().now());
  EXPECT_FALSE(decision.used_fallback);
  EXPECT_EQ(decision.stale_demoted, 1);
  ASSERT_EQ(decision.ranking.size(), env.node_names().size());
  EXPECT_EQ(decision.ranking.back().node, "node-5");
}

TEST(Degradation, DelayedExporterGoesStaleThenCatchesUp) {
  exp::EnvOptions options;
  options.faults.push_back(
      {fault::FaultKind::kExporterDelay, "node-2", 44.0, 40.0, 15.0});
  exp::SimEnv env(9, options);
  env.warmup();
  env.engine().run_until(60.0);

  // Reports lag 15 s: the freshest sample visible is ~15 s old.
  auto during = env.snapshot();
  EXPECT_LT(during.by_name("node-2").last_seen, 47.0);
  EXPECT_EQ(telemetry::annotate_staleness(during, 10.0), 1);

  // After the fault expires the pipeline drains and freshness recovers.
  env.engine().run_until(110.0);
  auto after = env.snapshot();
  EXPECT_GT(after.by_name("node-2").last_seen, 95.0);
  EXPECT_EQ(telemetry::annotate_staleness(after, 10.0), 0);
}

TEST(Fallback, NullModelProducesSpreadingRanking) {
  exp::SimEnv env(11);
  env.warmup();
  core::FallbackOptions fallback;
  fallback.enabled = true;
  core::TelemetryFetcher fetcher(env.tsdb(), env.node_names(),
                                 env.options().snapshot);
  core::LtsScheduler scheduler(fetcher, /*model=*/nullptr,
                               core::FeatureSet::kTable1,
                               /*risk_aversion=*/0.0, fallback);
  EXPECT_FALSE(scheduler.has_usable_model());

  const auto snapshot = fetcher.fetch(env.engine().now());
  const auto decision =
      scheduler.schedule_from_snapshot(snapshot, small_job());
  EXPECT_TRUE(decision.used_fallback);
  ASSERT_EQ(decision.ranking.size(), snapshot.nodes.size());

  // Reproduce the spreading score: low load, high share of best-case free
  // memory first. The decision must equal the independent computation.
  double max_mem = 0.0;
  for (const auto& row : snapshot.nodes) {
    max_mem = std::max(max_mem, row.mem_available);
  }
  std::string best;
  double best_score = 1e300;
  for (const auto& row : snapshot.nodes) {
    const double score = row.cpu_load + (1.0 - row.mem_available / max_mem);
    if (score < best_score || (score == best_score && row.node < best)) {
      best_score = score;
      best = row.node;
    }
  }
  EXPECT_EQ(decision.selected(), best);

  // Deterministic: same snapshot, same ranking.
  const auto again = scheduler.schedule_from_snapshot(snapshot, small_job());
  ASSERT_EQ(again.ranking.size(), decision.ranking.size());
  for (std::size_t i = 0; i < again.ranking.size(); ++i) {
    EXPECT_EQ(again.ranking[i].node, decision.ranking[i].node);
  }
}

TEST(Fallback, MostlyStaleSnapshotOverridesUsableModel) {
  exp::SimEnv env(13);
  env.warmup();
  core::DegradationOptions degradation;
  degradation.enabled = true;
  degradation.max_staleness = 1e-6;  // everything is "stale"
  core::FallbackOptions fallback;
  fallback.enabled = true;
  core::LtsScheduler scheduler(
      core::TelemetryFetcher(env.tsdb(), env.node_names(),
                             env.options().snapshot, degradation),
      std::make_shared<ConstantModel>(), core::FeatureSet::kTable1,
      /*risk_aversion=*/0.0, fallback);
  EXPECT_TRUE(scheduler.has_usable_model());
  const auto decision = scheduler.schedule(small_job(), env.engine().now());
  EXPECT_TRUE(decision.used_fallback);
}

TEST(Fallback, DisabledKeepsStrictModelRequirement) {
  exp::SimEnv env(15);
  env.warmup();
  core::TelemetryFetcher fetcher(env.tsdb(), env.node_names());
  EXPECT_THROW(core::LtsScheduler(fetcher, nullptr), Error);
}

TEST(FaultEnv, IdenticalScheduleReplaysBitIdentically) {
  exp::EnvOptions options;
  exp::FaultScheduleOptions fault_options;
  fault_options.faults_per_100s = 4.0;
  fault_options.horizon = 100.0;
  options.faults = exp::generate_fault_schedule(options.cluster_spec, 7,
                                                fault_options);
  ASSERT_FALSE(options.faults.empty());

  auto fingerprint = [&](exp::SimEnv& env) {
    env.warmup();
    env.engine().run_until(150.0);
    return env.snapshot();
  };
  exp::SimEnv a(5, options), b(5, options);
  const auto snap_a = fingerprint(a);
  const auto snap_b = fingerprint(b);
  ASSERT_EQ(snap_a.nodes.size(), snap_b.nodes.size());
  for (std::size_t i = 0; i < snap_a.nodes.size(); ++i) {
    EXPECT_EQ(snap_a.nodes[i].node, snap_b.nodes[i].node);
    EXPECT_DOUBLE_EQ(snap_a.nodes[i].rtt_mean, snap_b.nodes[i].rtt_mean);
    EXPECT_DOUBLE_EQ(snap_a.nodes[i].tx_rate, snap_b.nodes[i].tx_rate);
    EXPECT_DOUBLE_EQ(snap_a.nodes[i].rx_rate, snap_b.nodes[i].rx_rate);
    EXPECT_DOUBLE_EQ(snap_a.nodes[i].cpu_load, snap_b.nodes[i].cpu_load);
    EXPECT_DOUBLE_EQ(snap_a.nodes[i].mem_available,
                     snap_b.nodes[i].mem_available);
    EXPECT_DOUBLE_EQ(snap_a.nodes[i].last_seen, snap_b.nodes[i].last_seen);
  }
  EXPECT_EQ(a.fault_injector().injected(), b.fault_injector().injected());
  EXPECT_EQ(a.fault_injector().recovered(), b.fault_injector().recovered());
}

}  // namespace
