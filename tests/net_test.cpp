// Unit tests for the network substrate: topology/routing and the max-min
// fair flow model.
#include <gtest/gtest.h>

#include <cmath>

#include "net/flow.hpp"
#include "net/topology.hpp"
#include "simcore/engine.hpp"
#include "util/common.hpp"

namespace lts::net {
namespace {

// A----r1----r2----B ; C hangs off r1.
struct LineTopo {
  Topology topo;
  VertexId a, b, c, r1, r2;

  explicit LineTopo(Rate access = 1e9, Rate wan = 1e8,
                    SimTime wan_delay = 0.01) {
    a = topo.add_host("A");
    b = topo.add_host("B");
    c = topo.add_host("C");
    r1 = topo.add_router("r1");
    r2 = topo.add_router("r2");
    topo.add_duplex_link(a, r1, access, 1e-4);
    topo.add_duplex_link(c, r1, access, 1e-4);
    topo.add_duplex_link(b, r2, access, 1e-4);
    topo.add_duplex_link(r1, r2, wan, wan_delay);
  }
};

TEST(Topology, RoutesFollowShortestDelay) {
  LineTopo t;
  const auto& path = t.topo.route(t.a, t.b);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(t.topo.link(path[0]).from, t.a);
  EXPECT_EQ(t.topo.link(path.back()).to, t.b);
}

TEST(Topology, PathDelaySumsLinks) {
  LineTopo t;
  EXPECT_NEAR(t.topo.path_prop_delay(t.a, t.b), 1e-4 + 0.01 + 1e-4, 1e-12);
  EXPECT_NEAR(t.topo.path_prop_delay(t.a, t.c), 2e-4, 1e-12);
}

TEST(Topology, DuplicateNameThrows) {
  Topology topo;
  topo.add_host("x");
  EXPECT_THROW(topo.add_host("x"), Error);
}

TEST(Topology, UnreachableThrows) {
  Topology topo;
  const auto a = topo.add_host("a");
  const auto b = topo.add_host("b");
  EXPECT_THROW(topo.route(a, b), Error);
}

TEST(Topology, RouteToSelfThrows) {
  Topology topo;
  const auto a = topo.add_host("a");
  EXPECT_THROW(topo.route(a, a), Error);
}

TEST(Topology, FindVertexByName) {
  LineTopo t;
  EXPECT_EQ(t.topo.find_vertex("A"), t.a);
  EXPECT_EQ(t.topo.find_vertex("nope"), kNoVertex);
}

TEST(Topology, HostsExcludeRouters) {
  LineTopo t;
  const auto hosts = t.topo.hosts();
  EXPECT_EQ(hosts.size(), 3u);
}

TEST(Topology, ShorterPathPreferred) {
  // Two routes a->b: direct slow-delay link vs two fast-delay hops.
  Topology topo;
  const auto a = topo.add_host("a");
  const auto b = topo.add_host("b");
  const auto r = topo.add_router("r");
  topo.add_duplex_link(a, b, 1e9, 0.050);
  topo.add_duplex_link(a, r, 1e9, 0.001);
  topo.add_duplex_link(r, b, 1e9, 0.001);
  EXPECT_EQ(topo.route(a, b).size(), 2u);  // via router
}

// ------------------------------------------------------------- flows ----

TEST(FlowManager, SingleFlowUsesBottleneckCapacity) {
  sim::Engine engine;
  LineTopo t;
  FlowOptions opts;
  opts.tcp_window_bytes = 1e12;  // cap off for this test
  FlowManager fm(engine, t.topo, opts);
  bool done = false;
  fm.start(t.a, t.b, 1e8, [&] { done = true; });  // 100 MB over 100 MB/s WAN
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(engine.now(), 1.0, 0.01);
}

TEST(FlowManager, TwoFlowsShareBottleneckFairly) {
  sim::Engine engine;
  LineTopo t;
  FlowOptions opts;
  opts.tcp_window_bytes = 1e12;
  FlowManager fm(engine, t.topo, opts);
  int done = 0;
  // Both A->B and C->B cross the 100 MB/s WAN link: 50 MB/s each, so each
  // 50 MB transfer takes 1 s.
  fm.start(t.a, t.b, 5e7, [&] { ++done; });
  fm.start(t.c, t.b, 5e7, [&] { ++done; });
  engine.run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(engine.now(), 1.0, 0.01);
}

TEST(FlowManager, EarlyCompletionFreesBandwidth) {
  sim::Engine engine;
  LineTopo t;
  FlowOptions opts;
  opts.tcp_window_bytes = 1e12;
  FlowManager fm(engine, t.topo, opts);
  double small_done = -1.0, big_done = -1.0;
  fm.start(t.a, t.b, 2.5e7, [&] { small_done = engine.now(); });
  fm.start(t.c, t.b, 7.5e7, [&] { big_done = engine.now(); });
  engine.run();
  // Phase 1: both at 50 MB/s until the small one finishes at t=0.5 with
  // the big one at 25 MB remaining... it then gets the full 100 MB/s:
  // 50 MB remaining at t=0.5 -> done at t=1.0.
  EXPECT_NEAR(small_done, 0.5, 0.01);
  EXPECT_NEAR(big_done, 1.0, 0.01);
}

TEST(FlowManager, TcpWindowCapsLongRttFlows) {
  sim::Engine engine;
  LineTopo t(1e9, 1e9, 0.05);  // 100 ms RTT path, fat links
  FlowOptions opts;
  opts.tcp_window_bytes = 1e6;  // 1 MB window
  opts.host_stack_delay = 0.0;
  FlowManager fm(engine, t.topo, opts);
  bool done = false;
  // base rtt ~ 2*(1e-4 + 0.05 + 1e-4) = 0.1004 s; cap ~ 9.96 MB/s.
  fm.start(t.a, t.b, 1e7, [&] { done = true; });
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(engine.now(), 1e7 / (1e6 / 0.1004), 0.02);
}

TEST(FlowManager, CancelStopsFlowAndCallback) {
  sim::Engine engine;
  LineTopo t;
  FlowManager fm(engine, t.topo);
  bool fired = false;
  const FlowId id = fm.start(t.a, t.b, 1e9, [&] { fired = true; });
  engine.schedule_in(0.1, [&] { fm.cancel(id); });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(fm.num_active(), 0u);
}

TEST(FlowManager, HostCountersAccumulate) {
  sim::Engine engine;
  LineTopo t;
  FlowOptions opts;
  opts.tcp_window_bytes = 1e12;
  FlowManager fm(engine, t.topo, opts);
  fm.start(t.a, t.b, 5e7, nullptr);
  engine.run();
  EXPECT_NEAR(fm.host_tx_bytes(t.a), 5e7, 1.0);
  EXPECT_NEAR(fm.host_rx_bytes(t.b), 5e7, 1.0);
  EXPECT_NEAR(fm.host_tx_bytes(t.b), 0.0, 1e-9);
  EXPECT_NEAR(fm.host_rx_bytes(t.c), 0.0, 1e-9);
}

TEST(FlowManager, MidFlightCountersReflectProgress) {
  sim::Engine engine;
  LineTopo t;
  FlowOptions opts;
  opts.tcp_window_bytes = 1e12;
  FlowManager fm(engine, t.topo, opts);
  fm.start(t.a, t.b, 1e8, nullptr);  // 1s at 100 MB/s
  engine.run_until(0.5);
  EXPECT_NEAR(fm.host_tx_bytes(t.a), 5e7, 1e6);
}

TEST(FlowManager, UtilizationAndQueueing) {
  sim::Engine engine;
  LineTopo t;
  FlowOptions opts;
  opts.tcp_window_bytes = 1e12;
  FlowManager fm(engine, t.topo, opts);
  const SimTime idle_rtt = fm.current_rtt(t.a, t.b);
  fm.start(t.a, t.b, 1e9, nullptr);
  // WAN link saturated: utilization 1, queueing delay raises the RTT.
  const auto& path = t.topo.route(t.a, t.b);
  EXPECT_NEAR(fm.link_utilization(path[1]), 1.0, 1e-9);
  EXPECT_GT(fm.current_rtt(t.a, t.b), idle_rtt);
}

TEST(FlowManager, BaseRttSymmetric) {
  sim::Engine engine;
  LineTopo t;
  FlowManager fm(engine, t.topo);
  EXPECT_NEAR(fm.base_rtt(t.a, t.b), fm.base_rtt(t.b, t.a), 1e-12);
}

TEST(FlowManager, ManyFlowsAllComplete) {
  sim::Engine engine;
  LineTopo t;
  FlowManager fm(engine, t.topo);
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    fm.start(i % 2 == 0 ? t.a : t.c, t.b, 1e6 * (i + 1),
             [&] { ++done; });
  }
  engine.run();
  EXPECT_EQ(done, 50);
  EXPECT_EQ(fm.num_completed(), 50u);
}

TEST(FlowManager, CallbackMayStartNewFlow) {
  sim::Engine engine;
  LineTopo t;
  FlowManager fm(engine, t.topo);
  bool chained = false;
  fm.start(t.a, t.b, 1e6, [&] {
    fm.start(t.b, t.c, 1e6, [&] { chained = true; });
  });
  engine.run();
  EXPECT_TRUE(chained);
}

TEST(FlowManager, ZeroOrNegativeSizeThrows) {
  sim::Engine engine;
  LineTopo t;
  FlowManager fm(engine, t.topo);
  EXPECT_THROW(fm.start(t.a, t.b, 0.0, nullptr), Error);
  EXPECT_THROW(fm.start(t.a, t.a, 10.0, nullptr), Error);
}

TEST(FlowManager, RatesRespectLinkCapacityInvariant) {
  sim::Engine engine;
  LineTopo t;
  FlowManager fm(engine, t.topo);
  for (int i = 0; i < 20; ++i) {
    fm.start(t.a, t.b, 1e7, nullptr);
    fm.start(t.c, t.b, 1e7, nullptr);
  }
  for (std::size_t l = 0; l < t.topo.num_links(); ++l) {
    EXPECT_LE(fm.link_utilization(static_cast<LinkId>(l)), 1.0 + 1e-9);
  }
  engine.run();
}

}  // namespace
}  // namespace lts::net

// ----------------------------------------------------- additional edges ----

namespace lts::net {
namespace {

TEST(FlowManager, InfoTracksMidFlightProgress) {
  sim::Engine engine;
  LineTopo t;
  FlowOptions opts;
  opts.tcp_window_bytes = 1e12;
  FlowManager fm(engine, t.topo, opts);
  const FlowId id = fm.start(t.a, t.b, 1e8, nullptr);
  engine.run_until(0.25);
  const auto info = fm.info(id);
  EXPECT_EQ(info.src, t.a);
  EXPECT_EQ(info.dst, t.b);
  EXPECT_DOUBLE_EQ(info.total, 1e8);
  EXPECT_NEAR(info.transferred, 2.5e7, 1e6);
  EXPECT_NEAR(info.rate, 1e8, 1.0);
  engine.run();
  EXPECT_FALSE(fm.active(id));
  EXPECT_THROW(fm.info(id), Error);
}

TEST(FlowManager, CancelMidCompletionWindowIsSafe) {
  sim::Engine engine;
  LineTopo t;
  FlowManager fm(engine, t.topo);
  std::vector<FlowId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(fm.start(t.a, t.b, 1e6 * (i + 1), nullptr));
  }
  // Cancel every other flow from inside an event between completions.
  engine.schedule_in(0.001, [&] {
    for (std::size_t i = 0; i < ids.size(); i += 2) fm.cancel(ids[i]);
  });
  engine.run();
  EXPECT_EQ(fm.num_active(), 0u);
  EXPECT_EQ(fm.num_completed(), 5u);
}

TEST(FlowManager, QueueingRaisesMeasuredRttMonotonically) {
  sim::Engine engine;
  LineTopo t;
  FlowOptions opts;
  opts.tcp_window_bytes = 1e12;
  FlowManager fm(engine, t.topo, opts);
  double previous = fm.current_rtt(t.a, t.b);
  for (int i = 0; i < 4; ++i) {
    fm.start(t.a, t.b, 1e9, nullptr);
    const double now = fm.current_rtt(t.a, t.b);
    EXPECT_GE(now, previous - 1e-12);
    previous = now;
  }
}

TEST(FlowManager, ActiveFlowCountPerHost) {
  sim::Engine engine;
  LineTopo t;
  FlowManager fm(engine, t.topo);
  fm.start(t.a, t.b, 1e9, nullptr);
  fm.start(t.a, t.c, 1e9, nullptr);
  fm.start(t.c, t.b, 1e9, nullptr);
  EXPECT_EQ(fm.host_active_flows(t.a), 2u);
  EXPECT_EQ(fm.host_active_flows(t.b), 2u);
  EXPECT_EQ(fm.host_active_flows(t.c), 2u);
}

}  // namespace
}  // namespace lts::net
