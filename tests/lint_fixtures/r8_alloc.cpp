// R8 fixture: allocations inside declared hot-path functions. Linted under
// any virtual path (the rule keys on function names, not directories).
// Never built.
#include <memory>
#include <vector>

namespace lts::fixture {

// Fires four ways: new, make_unique, std::function, un-reserved push_back
// in a loop.
void recompute_rates(std::vector<double>& out, std::size_t n) {
  double* scratch = new double[n];
  auto owned = std::make_unique<double[]>(n);
  std::function<double(double)> f = [](double x) { return x; };
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(f(scratch[i]));
  }
  delete[] scratch;
}

// Clean: the loop's container was reserved in this body first.
void predict_batch(std::vector<double>& out, std::size_t n) {
  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<double>(i));
  }
}

// Fires through the malformed waiver (unknown token), which must not
// suppress; the braceless loop form must also be caught.
void schedule_many(std::vector<int>& acc, int n) {
  // lts-lint: allocation-ok(wrong token name)
  for (int i = 0; i < n; ++i) acc.push_back(i);
}

// Clean: identical body, but the name is not on the hot-path list.
void build_report(std::vector<double>& out, std::size_t n) {
  double* scratch = new double[n];
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(scratch[i]);
  }
  delete[] scratch;
}

// Fires: engine dispatch is hot by (class, name), not name alone.
void Engine::step(std::vector<int>& pending) {
  auto task = std::make_shared<int>(0);
  pending.push_back(*task);
}

}  // namespace lts::fixture
