// Seeded R1 violations: every nondeterminism source the rule must catch.
// Linted under a virtual path inside src/ (see lint_test.cpp); never built.
#include <chrono>
#include <cstdlib>
#include <random>

namespace lts::fixture {

double draw() {
  std::random_device rd;          // -> R1 random_device
  std::srand(rd());               // -> R1 srand
  int noise = rand();             // -> R1 rand
  auto t0 = std::chrono::steady_clock::now();    // -> R1 wall clock
  auto t1 = std::chrono::system_clock::now();    // -> R1 wall clock
  const char* cfg = std::getenv("LTS_MODE");     // -> R1 getenv
  (void)t0;
  (void)t1;
  (void)cfg;
  return static_cast<double>(noise);
}

}  // namespace lts::fixture
