// R3-compliant hot-path instrumentation: registrations hoisted into a
// static *Metrics struct, mutations confined to an outlined record_*
// function, call site gated on the cached enabled flag. Must lint clean
// under a virtual src/net/ path. Never built.
namespace lts::fixture {

struct StepMetrics {
  obs::Counter& steps = obs::counter("fixture_steps_total", {}, "steps");
  obs::Gauge& depth = obs::gauge("fixture_depth", {}, "queue depth");
  static StepMetrics& get() {
    static StepMetrics m;
    return m;
  }
};

void record_step_metrics(double queue_depth) {
  auto& metrics = StepMetrics::get();
  metrics.steps.inc();
  metrics.depth.set(queue_depth);
}

void step(const std::atomic<bool>* obs_enabled_) {
  if (obs_enabled_->load(std::memory_order_relaxed)) {
    record_step_metrics(3.0);
  }
}

}  // namespace lts::fixture
