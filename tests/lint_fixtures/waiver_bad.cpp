// Seeded malformed waivers: every syntax error the waiver parser rejects.
// Never built.
#include <unordered_map>

namespace lts::fixture {

// lts-lint: no-such-token(whatever)                    -> unknown token
std::unordered_map<int, int> a_;

// lts-lint: ordered-ok                                 -> missing justification
std::unordered_map<int, int> b_;

// lts-lint: ordered-ok()                               -> empty justification
std::unordered_map<int, int> c_;

void fanout(ThreadPool& pool) {
  int sum = 0;
  // lts-lint: shared-guarded(hopefully fine)           -> invalid strategy
  pool.parallel_for(4, [&](std::size_t i) { sum += static_cast<int>(i); });
}

}  // namespace lts::fixture
