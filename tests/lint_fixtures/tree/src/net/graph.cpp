// Fixture tree: iterates the companion header's unordered member — R2's
// cross-file half must flag both iteration forms.
#include "net/graph.hpp"

namespace fixture {

double Graph::total_weight() const {
  double total = 0.0;
  for (const auto& kv : edges_) {
    total += kv.second;
  }
  (void)edges_.begin();
  return total;
}

}  // namespace fixture
