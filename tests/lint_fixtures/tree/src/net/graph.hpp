// Fixture tree: the unordered member declared here is iterated by
// graph.cpp — the R2 cross-file check must see this declaration through
// the companion lookup in the shared project model.
#pragma once

#include <unordered_map>

namespace fixture {

class Graph {
 public:
  double total_weight() const;

 private:
  // lts-lint: ordered-ok(fixture: keyed lookups only in this header; the .cpp's iteration is the seeded violation)
  std::unordered_map<int, double> edges_;
};

}  // namespace fixture
