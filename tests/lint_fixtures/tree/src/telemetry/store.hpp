// Fixture tree: a Tsdb-protocol class whose header carries the member and
// access declarations the cross-file index must resolve for store.cpp.
#pragma once

namespace fixture {

class Tsdb {
 public:
  void evict(int id);
  void bump_epoch() { ++epoch_; }

 private:
  void compact(int id);

  std::vector<int> series_;
  unsigned long long epoch_ = 0;
};

}  // namespace fixture
