// Fixture tree: R6 must fire on the public mutator and stay silent on the
// private helper — both facts (membership and access) come from the
// companion header resolved through the include graph.
#include "telemetry/store.hpp"

namespace fixture {

void Tsdb::evict(int id) {
  series_.erase(series_.begin() + id);
}

void Tsdb::compact(int id) {
  series_.push_back(id);
}

}  // namespace fixture
