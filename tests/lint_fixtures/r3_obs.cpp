// Seeded R3 violations: obs instrumentation in a hot path that skips the
// cached-enabled-flag pattern. Linted under a virtual src/net/ path; never
// built. Three distinct defects:
//   * instrument registration at function scope (not hoisted into a static
//     *Metrics struct, not a static local)
//   * mutation outside any record_* function
//   * a record_* function exists but the file has no
//     obs_enabled_->load(std::memory_order_relaxed) guard anywhere
namespace lts::fixture {

void solve_step() {
  auto& flows = obs::counter("fixture_flows_total", {}, "hot-path counter");
  flows.inc();
}

struct SolverMetrics {
  obs::Counter& rounds = obs::counter("fixture_rounds_total", {}, "ok here");
  static SolverMetrics& get();
};

void record_solver_metrics() { SolverMetrics::get().rounds.inc(); }

}  // namespace lts::fixture
