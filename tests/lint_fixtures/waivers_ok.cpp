// One violation of each waivable rule, each carrying a justified waiver —
// both placements (trailing the flagged line, and on a standalone comment
// line directly above it) are exercised. Must lint clean under a virtual
// src/simcore/ path. Never built.
#include <chrono>
#include <unordered_map>

namespace lts::fixture {

// lts-lint: ordered-ok(pure lookup table keyed by id; never iterated, so hash order cannot surface)
std::unordered_map<int, int> lookup_;

void timed_section() {
  auto t0 = std::chrono::steady_clock::now();  // lts-lint: nondeterminism-ok(profiling harness only; value printed, never fed to sim state)
  (void)t0;
}

void guarded_fanout(ThreadPool& pool) {
  std::mutex m;
  int shared = 0;
  // lts-lint: shared-guarded(mutex: every write to shared happens under m)
  pool.parallel_for(8, [&](std::size_t) {
    std::lock_guard lock(m);
    ++shared;
  });
}

void site_sharded_fanout(ThreadPool& pool) {
  std::vector<double> per_site(8, 0.0);
  // lts-lint: shared-guarded(site-partitioned: each worker writes only its own site's slot; no element is shared across workers)
  pool.parallel_for(8, [&](std::size_t i) {
    per_site[i] += 1.0;
  });
}

void watchdog_thread() {
  std::thread t([] {});  // lts-lint: thread-ok(fixture exercising the waiver path)
  t.join();
}

// R6: a Tsdb mutator that skips the epoch bump, justified (the fixture's
// pretend mutation is invisible to snapshots).
void Tsdb::touch_metadata(int series) {
  // lts-lint: epoch-ok(metadata-only rewrite: no sample or series-set change is observable through snapshot_features)
  series_[series] = series;
}

// R7: a thread-order-dependent sum accepted because the result feeds a
// tolerance-banded report, not replayed state.
double lossy_parallel_sum(ThreadPool& pool, const std::vector<double>& xs) {
  double total = 0.0;
  // lts-lint: shared-guarded(atomic: fixture pretends total is a relaxed atomic accumulated for diagnostics)
  // lts-lint: fp-order-ok(diagnostic-only total rendered at 1e-6 precision; never fed back into sim or label state)
  pool.parallel_for(xs.size(), [&](std::size_t i) { total += xs[i]; });
  return total;
}

// R8: a hot-path push_back loop whose growth is justified as one-time
// warm-up into a persistent buffer.
void predict_batch(const std::vector<double>& rows, std::vector<double>& out) {
  out.clear();
  for (const double r : rows) {
    // lts-lint: alloc-ok(persistent output buffer: cleared per batch with capacity retained from the first call)
    out.push_back(r);
  }
}

}  // namespace lts::fixture
