// One violation of each waivable rule, each carrying a justified waiver —
// both placements (trailing the flagged line, and on a standalone comment
// line directly above it) are exercised. Must lint clean under a virtual
// src/simcore/ path. Never built.
#include <chrono>
#include <unordered_map>

namespace lts::fixture {

// lts-lint: ordered-ok(pure lookup table keyed by id; never iterated, so hash order cannot surface)
std::unordered_map<int, int> lookup_;

void timed_section() {
  auto t0 = std::chrono::steady_clock::now();  // lts-lint: nondeterminism-ok(profiling harness only; value printed, never fed to sim state)
  (void)t0;
}

void guarded_fanout(ThreadPool& pool) {
  std::mutex m;
  int shared = 0;
  // lts-lint: shared-guarded(mutex: every write to shared happens under m)
  pool.parallel_for(8, [&](std::size_t) {
    std::lock_guard lock(m);
    ++shared;
  });
}

void site_sharded_fanout(ThreadPool& pool) {
  std::vector<double> per_site(8, 0.0);
  // lts-lint: shared-guarded(site-partitioned: each worker writes only its own site's slot; no element is shared across workers)
  pool.parallel_for(8, [&](std::size_t i) {
    per_site[i] += 1.0;
  });
}

void watchdog_thread() {
  std::thread t([] {});  // lts-lint: thread-ok(fixture exercising the waiver path)
  t.join();
}

}  // namespace lts::fixture
