// Seeded R4 violations: raw thread management and an unannotated
// shared-capture parallel_for. Never built.
#include <thread>

namespace lts::fixture {

void spawn_unmanaged() {
  std::thread worker([] {});                       // -> R4 raw thread
  worker.detach();                                 // -> R4 detach
  const unsigned n = std::thread::hardware_concurrency();  // fine: not a ctor
  (void)n;
}

void unannotated_shared_state(ThreadPool& pool) {
  int sum = 0;
  pool.parallel_for(16, [&](std::size_t i) {       // -> R4 no annotation
    sum += static_cast<int>(i);
  });
}

void value_capture_is_fine(ThreadPool& pool) {
  const int base = 7;
  pool.parallel_for(4, [base](std::size_t) { (void)base; });
}

}  // namespace lts::fixture
