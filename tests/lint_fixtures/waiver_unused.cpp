// A well-formed waiver that suppresses nothing: the stale-waiver check must
// flag it so waivers cannot outlive the violations they excused. Never built.

namespace lts::fixture {

// lts-lint: ordered-ok(this map was converted to std::map long ago; the waiver lingers)
int perfectly_ordinary_ = 0;

}  // namespace lts::fixture
