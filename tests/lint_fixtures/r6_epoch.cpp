// R6 fixture: epoch/invalidation protocol violations. Linted under a
// virtual src/telemetry/ or src/net/ path with r6_epoch_header.txt as the
// companion (it supplies the class index: which members exist and which
// functions are public). Never built.
#include "telemetry/tsdb.hpp"

namespace lts::telemetry {

// Fires: public mutator of the series set with no epoch acknowledgment.
void Tsdb::drop_series(int id) {
  series_.erase(series_.begin() + id);
}

// Clean: the same mutation acknowledged with the increment idiom.
void Tsdb::append_row(int id) {
  ++epoch_;
  series_.push_back(id);
}

// Clean: acknowledged through the named bump.
void Tsdb::reset_counters() {
  samples_dropped_ = 0;
  bump_epoch();
}

// Clean: private helper (the header declares gc_locked under private:);
// its public caller owns the acknowledgment.
void Tsdb::gc_locked(int id) {
  series_.erase(series_.begin() + id);
}

// Fires: exporter shaping knob with no bump through its Tsdb.
void NodeExporter::set_report_delay(double delay) {
  report_delay_ = delay;
}

// Fires, then waived below: malformed waiver first (missing justification),
// so the diagnostic still lands AND a waiver-syntax is reported.
void Tsdb::clear_all() {
  // lts-lint: epoch-ok
  by_name_.clear();
}

// Fires: FlowManager flow-state mutation without dirty marking.
void FlowManager::forget_flow(int slot) {
  by_id_.erase(by_id_.begin() + slot);
}

// Clean: the dirty flag is the acknowledgment.
void FlowManager::adopt_flow(int slot) {
  by_id_.push_back(slot);
  mark_dirty();
}

}  // namespace lts::telemetry
