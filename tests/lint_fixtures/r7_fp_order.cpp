// R7 fixture: floating-point reduction-order hazards. Linted under a
// virtual determinism-critical path (src/net/, src/ml/, ...). Never built.
#include <numeric>
#include <unordered_map>

namespace lts::fixture {

std::unordered_map<int, double> weights_;

// Fires: unspecified reduction order.
double reduce_all(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end());
}

// Fires: transform_reduce is the same hazard with a projection.
double reduce_projected(const std::vector<double>& xs) {
  return std::transform_reduce(xs.begin(), xs.end(), 0.0, std::plus<>{},
                               [](double x) { return x * x; });
}

// Fires: hash order decides the FP summation order.
double sum_weights() {
  return std::accumulate(weights_.begin(), weights_.end(), 0.0,
                         [](double acc, const auto& kv) { return acc + kv.second; });
}

// Clean: accumulate over an ordered vector is a fixed left fold.
double sum_ordered(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

// Fires: `total` lives outside the parallel_for extent, so the summation
// order follows thread interleaving. The malformed waiver (empty
// justification) must not suppress it.
double parallel_total(ThreadPool& pool, const std::vector<double>& xs) {
  double total = 0.0;
  // lts-lint: shared-guarded(atomic: fixture pretends total is a relaxed atomic)
  pool.parallel_for(xs.size(), [&](std::size_t i) {
    // lts-lint: fp-order-ok()
    total += xs[i];
  });
  return total;
}

// Clean: per-item local accumulation, combined outside the lambda by the
// caller in a fixed order.
void parallel_local(ThreadPool& pool, const std::vector<double>& xs,
                    std::vector<double>& out) {
  // lts-lint: shared-guarded(partitioned: each item writes only out[i])
  pool.parallel_for(xs.size(), [&](std::size_t i) {
    double acc = 0.0;
    acc += xs[i] * 2.0;
    out[i] = acc;
  });
}

}  // namespace lts::fixture
