// Seeded R5 violations: no #pragma once / include guard before the first
// declaration, and a file-scope using-directive. Never built.
#include <string>

using namespace std;

namespace lts::fixture {

inline string shout(const string& s) { return s + "!"; }

}  // namespace lts::fixture
