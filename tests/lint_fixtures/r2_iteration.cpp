// Seeded R2 cross-file violation: this "cpp" iterates a container whose
// unordered declaration lives in the companion header text
// (r2_iteration_header.txt). Linted as a pair; never built.

namespace lts::fixture {

double total_weight(const EdgeTable& table) {
  double sum = 0.0;
  for (const auto& [key, weight] : edges_) {  // iterates companion's map
    sum += weight;
  }
  for (auto it = weights_.begin(); it != weights_.end(); ++it) {
    sum += it->second;
  }
  return sum;
}

}  // namespace lts::fixture
