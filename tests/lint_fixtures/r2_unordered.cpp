// Seeded R2 violations: unordered containers in determinism-critical code.
// Linted under a virtual src/simcore/ path; never built.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace lts::fixture {

struct Registry {
  std::unordered_map<int, std::string> by_id;  // -> R2 declaration
  std::unordered_set<int> seen;                // -> R2 declaration

  int checksum() const {
    int sum = 0;
    for (const auto& [id, name] : by_id) {  // order-dependent traversal
      sum += id + static_cast<int>(name.size());
    }
    return sum;
  }
};

}  // namespace lts::fixture
