// Differential tests for the training-path overhaul: the presorted-column
// split finders in DecisionTreeRegressor / RandomForestRegressor /
// GradientBoostedTrees must reproduce the pre-overhaul per-node
// gather-and-sort search bit for bit — same serialized model, same
// predictions — across dataset shapes (smooth, duplicate-heavy, skewed
// targets), warm-start refit continuations, and the parallel/serial scan
// paths. The reference implementation lives in bench/train_reference.hpp,
// shared with bench_train_throughput so the suite pins exactly what the
// bench races.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ml/forest.hpp"
#include "ml/gbt.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

#include "../bench/train_reference.hpp"

namespace lts {
namespace {

constexpr std::size_t kFeatures = 6;

enum class Shape { kSmooth, kDupHeavy, kSkewed };

// Small synthetic windows: kSmooth is continuous everywhere, kDupHeavy
// quantizes half the columns into a handful of tied values (exercising the
// equal-x boundary skips and the stable tie ordering), kSkewed drives a
// long-tailed target (exercising split selection under widely varying
// prefix sums).
ml::Dataset make_data(std::size_t rows, Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  ml::Matrix x(rows, kFeatures);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < kFeatures; ++c) {
      double v = rng.uniform();
      if (shape == Shape::kDupHeavy && c % 2 == 1) {
        v = std::floor(v * 8.0) / 8.0;
      }
      x(r, c) = v;
    }
    const auto* row = &x(r, 0);
    double target = 2.0 * row[0] + std::sin(4.0 * row[1]) +
                    3.0 * row[2] * row[3] - row[4] +
                    0.05 * (rng.uniform() - 0.5);
    if (shape == Shape::kSkewed) target = std::exp(2.5 * target);
    y[r] = target;
  }
  std::vector<std::string> names;
  for (std::size_t c = 0; c < kFeatures; ++c) {
    names.push_back("f" + std::to_string(c));
  }
  return ml::Dataset(std::move(x), std::move(y), std::move(names));
}

std::vector<Shape> all_shapes() {
  return {Shape::kSmooth, Shape::kDupHeavy, Shape::kSkewed};
}

// Bitwise prediction comparison over a probe window.
void expect_same_predictions(const ml::Regressor& opt,
                             const std::vector<double>& ref_pred,
                             const ml::Dataset& probe) {
  std::vector<double> opt_pred(probe.size(), 0.0);
  opt.predict_batch(probe.x().data(), probe.size(), kFeatures, opt_pred);
  ASSERT_EQ(opt_pred.size(), ref_pred.size());
  for (std::size_t i = 0; i < opt_pred.size(); ++i) {
    EXPECT_EQ(opt_pred[i], ref_pred[i]) << "probe row " << i;
  }
}

// ------------------------------------------------------------- tree ----

TEST(TrainDifferential, TreeMatchesReferenceAcrossShapes) {
  const ml::Dataset probe = make_data(64, Shape::kSmooth, 99);
  for (const Shape shape : all_shapes()) {
    const ml::Dataset data = make_data(300, shape, 11);
    ml::TreeParams tp;
    tp.max_depth = 8;
    tp.min_samples_leaf = 2;
    const auto ref = trainref::fit_tree(data, tp, /*seed=*/7);
    ml::DecisionTreeRegressor tree(tp, /*seed=*/7);
    tree.fit(data);
    EXPECT_EQ(tree.to_json().dump(),
              trainref::tree_model_json(ref, tp, kFeatures).dump());
    std::vector<double> ref_pred(probe.size());
    for (std::size_t i = 0; i < probe.size(); ++i) {
      ref_pred[i] = trainref::tree_value(ref, probe.row(i));
    }
    expect_same_predictions(tree, ref_pred, probe);
  }
}

TEST(TrainDifferential, FeatureSubsampledTreeMatchesReference) {
  // max_features < num_features draws a fresh random subset per node; the
  // overhaul must consume the Rng stream in exactly the reference's
  // (depth-first) order for the models to agree.
  const ml::Dataset data = make_data(400, Shape::kDupHeavy, 13);
  ml::TreeParams tp;
  tp.max_depth = 10;
  tp.max_features = 2;
  const auto ref = trainref::fit_tree(data, tp, /*seed=*/21);
  ml::DecisionTreeRegressor tree(tp, /*seed=*/21);
  tree.fit(data);
  EXPECT_EQ(tree.to_json().dump(),
            trainref::tree_model_json(ref, tp, kFeatures).dump());
}

TEST(TrainDifferential, ParallelAndSerialScansAreBitIdentical) {
  // Wide nodes fan the per-feature scan out on the pool; narrow ones stay
  // serial. Both paths must serialize to the same model as a fully serial
  // run — the hook is a scheduling knob, never a correctness one.
  const ml::Dataset data = make_data(2048, Shape::kDupHeavy, 17);
  ml::TreeParams tp;
  tp.max_depth = 7;
  ml::DecisionTreeRegressor parallel_tree(tp, /*seed=*/3);
  parallel_tree.fit(data);

  ml::set_parallel_split_scan(false);
  ml::DecisionTreeRegressor serial_tree(tp, /*seed=*/3);
  serial_tree.fit(data);
  ml::set_parallel_split_scan(true);

  EXPECT_EQ(parallel_tree.to_json().dump(), serial_tree.to_json().dump());
}

// ----------------------------------------------------------- forest ----

TEST(TrainDifferential, ForestFitAndRollingRefitMatchReference) {
  // Fit on one window, then roll two refits: FIFO half-replacement with
  // generation-salted Rngs must track the reference through the whole
  // sequence, pinning the shared window presort + bootstrap streaming path.
  const ml::Dataset probe = make_data(64, Shape::kSmooth, 98);
  ml::ForestParams fp;
  fp.n_estimators = 8;
  fp.tree.max_depth = 6;
  fp.max_features = 2;
  fp.seed = 5;

  trainref::RefForest ref;
  ref.params = fp;
  ml::RandomForestRegressor forest(fp);
  const ml::Dataset window0 = make_data(300, Shape::kDupHeavy, 31);
  ref.fit(window0);
  forest.fit(window0);
  EXPECT_EQ(forest.to_json().dump(), trainref::forest_model_json(ref).dump());

  for (std::uint64_t k = 1; k <= 2; ++k) {
    const ml::Dataset w = make_data(300, Shape::kDupHeavy, 31 + k);
    ref.refit(w);
    forest.refit(w);
    EXPECT_EQ(forest.to_json().dump(),
              trainref::forest_model_json(ref).dump())
        << "refit " << k;
  }
  std::vector<double> ref_pred(probe.size());
  for (std::size_t i = 0; i < probe.size(); ++i) {
    ref_pred[i] = ref.predict_one(probe.row(i));
  }
  expect_same_predictions(forest, ref_pred, probe);
}

// -------------------------------------------------------------- gbt ----

TEST(TrainDifferential, GbtFitAndWarmStartRefitMatchReference) {
  // Row/column subsampling, early stopping, and the warm-start refit all
  // consume randomness; bit-identity requires the presorted path to draw
  // and accumulate in exactly the reference's order.
  const ml::Dataset probe = make_data(64, Shape::kSmooth, 97);
  for (const Shape shape : all_shapes()) {
    const ml::Dataset window0 = make_data(320, shape, 41);
    const ml::Dataset window1 = make_data(320, shape, 42);
    ml::GbtParams gp;
    gp.n_rounds = 12;
    gp.max_depth = 3;
    gp.subsample = 0.8;
    gp.colsample = 0.75;
    gp.early_stopping_rounds = 4;
    gp.validation_fraction = 0.2;
    gp.seed = 9;

    trainref::RefGbt ref(gp);
    ref.fit(window0);
    ref.refit(window1);
    ml::GradientBoostedTrees gbt(gp);
    gbt.fit(window0);
    gbt.refit(window1);
    EXPECT_EQ(gbt.to_json().dump(), ref.model_json().dump());
    std::vector<double> ref_pred(probe.size());
    for (std::size_t i = 0; i < probe.size(); ++i) {
      ref_pred[i] = ref.predict_one(probe.row(i));
    }
    expect_same_predictions(gbt, ref_pred, probe);
  }
}

TEST(TrainDifferential, GbtSplitsAdjacentDoublesWithoutDegenerating) {
  // Regression test for the threshold midpoint fix: with a = the double
  // just below 1.0 and b = 1.0, (a + b) / 2 rounds up onto b itself, so a
  // split at `x <= threshold` would send every row left and die on the
  // partition assert. The finder must snap the threshold back to a.
  const double b = 1.0;
  const double a = std::nextafter(b, 0.0);
  ASSERT_EQ((a + b) / 2.0, b);  // the degenerate rounding this test pins

  const std::size_t rows = 8;
  ml::Matrix x(rows, 1);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    x(r, 0) = r < rows / 2 ? a : b;
    y[r] = r < rows / 2 ? 0.0 : 10.0;
  }
  const ml::Dataset data(std::move(x), std::move(y), {"f0"});

  ml::GbtParams gp;
  gp.n_rounds = 1;
  gp.learning_rate = 1.0;
  gp.max_depth = 1;
  gp.min_child_weight = 0.0;
  gp.early_stopping_rounds = 0;
  ml::GradientBoostedTrees gbt(gp);
  gbt.fit(data);

  // The lone stump must split the two tied groups at the snapped
  // threshold, not collapse into a single leaf.
  const double low = gbt.predict_row(std::vector<double>{a});
  const double high = gbt.predict_row(std::vector<double>{b});
  EXPECT_LT(low, 2.5);
  EXPECT_GT(high, 7.5);

  // And the reference (old search + the same snap) agrees bit for bit.
  trainref::RefGbt ref(gp);
  ref.fit(data);
  EXPECT_EQ(gbt.to_json().dump(), ref.model_json().dump());
}

}  // namespace
}  // namespace lts
