// Property-based tests: invariants that must hold across randomized inputs,
// swept with parameterized gtest suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "cluster/cluster.hpp"
#include "cluster/cpu.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "ml/forest.hpp"
#include "ml/gbt.hpp"
#include "ml/model.hpp"
#include "net/flow.hpp"
#include "net/topology.hpp"
#include "simcore/engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lts {
namespace {

// =================================================== flow conservation ====

class FlowPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowPropertyTest, BytesConservedAcrossRandomWorkload) {
  // Every byte transmitted by some host is received by another; totals
  // match the requested transfer sizes exactly once all flows finish.
  Rng rng(GetParam());
  sim::Engine engine;
  net::Topology topo;
  std::vector<net::VertexId> hosts;
  const auto r1 = topo.add_router("r1");
  const auto r2 = topo.add_router("r2");
  topo.add_duplex_link(r1, r2, rng.uniform(5e7, 5e8), rng.uniform(1e-3, 5e-2));
  for (int i = 0; i < 5; ++i) {
    hosts.push_back(topo.add_host("h" + std::to_string(i)));
    topo.add_duplex_link(hosts.back(), i % 2 == 0 ? r1 : r2,
                         rng.uniform(1e8, 1e9), 1e-4);
  }
  net::FlowManager fm(engine, topo);
  double total_requested = 0.0;
  const int n_flows = 30;
  for (int i = 0; i < n_flows; ++i) {
    const auto src = static_cast<std::size_t>(rng.uniform_int(0, 4));
    auto dst = static_cast<std::size_t>(rng.uniform_int(0, 3));
    if (dst >= src) ++dst;
    const Bytes size = rng.uniform(1e5, 5e7);
    total_requested += size;
    engine.schedule_in(rng.uniform(0.0, 2.0), [&fm, &hosts, src, dst, size] {
      fm.start(hosts[src], hosts[dst], size, nullptr);
    });
  }
  engine.run();
  EXPECT_EQ(fm.num_completed(), static_cast<std::uint64_t>(n_flows));
  double total_tx = 0.0, total_rx = 0.0;
  for (const auto h : hosts) {
    total_tx += fm.host_tx_bytes(h);
    total_rx += fm.host_rx_bytes(h);
  }
  EXPECT_NEAR(total_tx, total_requested, total_requested * 1e-9);
  EXPECT_NEAR(total_rx, total_requested, total_requested * 1e-9);
}

TEST_P(FlowPropertyTest, LinkCapacityNeverExceeded) {
  Rng rng(GetParam() ^ 0x1111);
  sim::Engine engine;
  net::Topology topo;
  const auto a = topo.add_host("a");
  const auto b = topo.add_host("b");
  const auto c = topo.add_host("c");
  const auto r = topo.add_router("r");
  topo.add_duplex_link(a, r, 2e8, 1e-4);
  topo.add_duplex_link(b, r, 1e8, 1e-4);
  topo.add_duplex_link(c, r, 3e8, 1e-4);
  net::FlowManager fm(engine, topo);
  const net::VertexId hosts[] = {a, b, c};
  for (int i = 0; i < 25; ++i) {
    const auto s = static_cast<std::size_t>(rng.uniform_int(0, 2));
    auto d = static_cast<std::size_t>(rng.uniform_int(0, 1));
    if (d >= s) ++d;
    fm.start(hosts[s], hosts[d], rng.uniform(1e6, 1e8), nullptr);
    for (std::size_t l = 0; l < topo.num_links(); ++l) {
      EXPECT_LE(fm.link_utilization(static_cast<net::LinkId>(l)),
                1.0 + 1e-9);
    }
  }
  engine.run();
}

TEST_P(FlowPropertyTest, MaxMinAllocationIsWorkConserving) {
  // Pareto efficiency: every flow is limited by a saturated link on its
  // path or by its TCP cap; otherwise the allocation wasted capacity.
  Rng rng(GetParam() ^ 0x2222);
  sim::Engine engine;
  net::Topology topo;
  const auto a = topo.add_host("a");
  const auto b = topo.add_host("b");
  const auto r1 = topo.add_router("r1");
  const auto r2 = topo.add_router("r2");
  topo.add_duplex_link(a, r1, 4e8, 1e-4);
  topo.add_duplex_link(r1, r2, 1e8, rng.uniform(1e-3, 3e-2));
  topo.add_duplex_link(r2, b, 4e8, 1e-4);
  net::FlowOptions options;
  options.tcp_window_bytes = rng.uniform(5e5, 5e6);
  net::FlowManager fm(engine, topo, options);
  std::vector<net::FlowId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(fm.start(a, b, 1e10, nullptr));
  }
  const SimTime rtt = fm.base_rtt(a, b);
  const Rate cap = options.tcp_window_bytes / rtt;
  double total_rate = 0.0;
  for (const auto id : ids) total_rate += fm.info(id).rate;
  // Either the bottleneck link is saturated or everyone runs at cap.
  const bool link_saturated = total_rate >= 1e8 * (1.0 - 1e-6);
  bool all_capped = true;
  for (const auto id : ids) {
    if (fm.info(id).rate < cap * (1.0 - 1e-6)) all_capped = false;
  }
  EXPECT_TRUE(link_saturated || all_capped);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ============================ max-min fairness on random topologies ========

// Random multi-site topology: 2-4 site routers in a full WAN mesh, each with
// 1-3 hosts, all capacities and delays drawn at random. Capacities stay well
// above the flow solver's dead-link rate floor so the floor never distorts
// the allocation invariants below.
struct RandomTopo {
  net::Topology topo;
  std::vector<net::VertexId> hosts;
};

RandomTopo make_random_topology(Rng& rng) {
  RandomTopo rt;
  const int n_sites = static_cast<int>(rng.uniform_int(2, 4));
  std::vector<net::VertexId> routers;
  for (int s = 0; s < n_sites; ++s) {
    routers.push_back(rt.topo.add_router("r" + std::to_string(s)));
  }
  for (int i = 0; i < n_sites; ++i) {
    for (int j = i + 1; j < n_sites; ++j) {
      rt.topo.add_duplex_link(routers[i], routers[j], rng.uniform(5e7, 6e8),
                              rng.uniform(1e-3, 5e-2));
    }
  }
  for (int s = 0; s < n_sites; ++s) {
    const int n_hosts = static_cast<int>(rng.uniform_int(1, 3));
    for (int h = 0; h < n_hosts; ++h) {
      rt.hosts.push_back(rt.topo.add_host("h" + std::to_string(s) + "_" +
                                          std::to_string(h)));
      rt.topo.add_duplex_link(rt.hosts.back(), routers[s],
                              rng.uniform(1e8, 1e9),
                              rng.uniform(5e-5, 5e-4));
    }
  }
  return rt;
}

// Checks the defining max-min fair allocation invariants against the
// solver's current rates, reconstructing each flow's path from the
// topology's deterministic routing:
//   1. no negative rates;
//   2. per-link allocated rate never exceeds capacity;
//   3. every flow has a bottleneck: it runs at its TCP cap, or some link on
//      its path is saturated AND carries no flow faster than it (increasing
//      this flow's rate would require decreasing a slower-or-equal one).
void expect_max_min_fair(const net::FlowManager& fm, const net::Topology& topo,
                         const std::vector<net::FlowId>& ids,
                         Bytes tcp_window) {
  constexpr double kTol = 1e-6;
  struct ActiveFlow {
    net::FlowInfo info;
    const std::vector<net::LinkId>* path;
  };
  std::vector<ActiveFlow> flows;
  std::vector<Rate> link_sum(topo.num_links(), 0.0);
  std::vector<Rate> link_max(topo.num_links(), 0.0);
  for (const auto id : ids) {
    if (!fm.active(id)) continue;
    ActiveFlow f{fm.info(id), nullptr};
    EXPECT_GE(f.info.rate, 0.0);
    f.path = &topo.route(f.info.src, f.info.dst);
    for (const auto l : *f.path) {
      link_sum[static_cast<std::size_t>(l)] += f.info.rate;
      link_max[static_cast<std::size_t>(l)] =
          std::max(link_max[static_cast<std::size_t>(l)], f.info.rate);
    }
    flows.push_back(f);
  }
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const Rate capacity = topo.link(static_cast<net::LinkId>(l)).capacity;
    EXPECT_LE(link_sum[l], capacity * (1.0 + kTol))
        << "link " << l << " over capacity";
  }
  for (const auto& f : flows) {
    const Rate cap = tcp_window / fm.base_rtt(f.info.src, f.info.dst);
    if (f.info.rate >= cap * (1.0 - kTol)) continue;  // TCP-window limited
    bool has_bottleneck = false;
    for (const auto l : *f.path) {
      const auto li = static_cast<std::size_t>(l);
      const Rate capacity = topo.link(l).capacity;
      if (link_sum[li] >= capacity * (1.0 - kTol) &&
          f.info.rate >= link_max[li] * (1.0 - kTol)) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck)
        << "flow " << f.info.src << "->" << f.info.dst << " at rate "
        << f.info.rate << " is neither capped nor bottlenecked";
  }
}

class MaxMinPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinPropertyTest, RandomTopologyAllocationIsMaxMinFair) {
  Rng rng(GetParam() ^ 0x3333);
  sim::Engine engine;
  RandomTopo rt = make_random_topology(rng);
  net::FlowOptions options;
  net::FlowManager fm(engine, rt.topo, options);
  std::vector<net::FlowId> ids;
  const int n_flows = static_cast<int>(rng.uniform_int(5, 25));
  for (int i = 0; i < n_flows; ++i) {
    const auto src =
        static_cast<std::size_t>(rng.uniform_int(0, rt.hosts.size() - 1));
    auto dst =
        static_cast<std::size_t>(rng.uniform_int(0, rt.hosts.size() - 2));
    if (dst >= src) ++dst;
    // Large transfers: no flow finishes while we inspect the allocation.
    ids.push_back(fm.start(rt.hosts[src], rt.hosts[dst], 1e12, nullptr));
  }
  expect_max_min_fair(fm, rt.topo, ids, options.tcp_window_bytes);
}

TEST_P(MaxMinPropertyTest, InvariantsSurviveCapacityCutsAndRestore) {
  // The fault injector mutates link capacities mid-run and calls refresh();
  // the allocation must satisfy the same invariants against the *degraded*
  // capacities, and byte conservation must hold end-to-end.
  Rng rng(GetParam() ^ 0x4444);
  sim::Engine engine;
  RandomTopo rt = make_random_topology(rng);
  net::FlowOptions options;
  net::FlowManager fm(engine, rt.topo, options);
  std::vector<net::FlowId> ids;
  double total_requested = 0.0;
  for (int i = 0; i < 12; ++i) {
    const auto src =
        static_cast<std::size_t>(rng.uniform_int(0, rt.hosts.size() - 1));
    auto dst =
        static_cast<std::size_t>(rng.uniform_int(0, rt.hosts.size() - 2));
    if (dst >= src) ++dst;
    const Bytes size = rng.uniform(1e8, 2e9);
    total_requested += size;
    ids.push_back(fm.start(rt.hosts[src], rt.hosts[dst], size, nullptr));
  }
  engine.run_until(0.5);

  // Degrade a few random links the way the injector does.
  std::vector<std::pair<net::LinkId, Rate>> saved;
  const int n_cuts = static_cast<int>(rng.uniform_int(1, 3));
  for (int c = 0; c < n_cuts; ++c) {
    const auto l = static_cast<net::LinkId>(
        rng.uniform_int(0, static_cast<std::int64_t>(rt.topo.num_links()) - 1));
    const Rate original = rt.topo.link(l).capacity;
    saved.emplace_back(l, original);
    rt.topo.set_link_capacity(l, original * rng.uniform(0.2, 0.7));
  }
  fm.invalidate_rates();
  expect_max_min_fair(fm, rt.topo, ids, options.tcp_window_bytes);

  engine.run_until(1.5);
  for (const auto& [l, original] : saved) {
    rt.topo.set_link_capacity(l, original);
  }
  fm.invalidate_rates();
  expect_max_min_fair(fm, rt.topo, ids, options.tcp_window_bytes);

  // With capacities restored every transfer must finish, delivering exactly
  // the requested bytes (conservation through the degraded interval).
  engine.run();
  EXPECT_EQ(fm.num_completed(), ids.size());
  double total_tx = 0.0, total_rx = 0.0;
  for (const auto h : rt.hosts) {
    total_tx += fm.host_tx_bytes(h);
    total_rx += fm.host_rx_bytes(h);
  }
  EXPECT_NEAR(total_tx, total_requested, total_requested * 1e-9);
  EXPECT_NEAR(total_rx, total_requested, total_requested * 1e-9);
}

// Reference progressive-filling solver: the textbook algorithm written the
// straightforward way — map-ordered flows, full per-round link scans, dense
// per-round count/bottleneck arrays. The production solver reaches the same
// allocation through epoch-stamped sparse updates over a path arena, so the
// two must agree not approximately but BIT-FOR-BIT: every freeze happens in
// the same order with the same operands, hence identical doubles.
struct RefFlow {
  std::vector<net::LinkId> path;
  Rate cap = 0.0;
  Rate rate = 0.0;
};

void naive_max_min_rates(const net::Topology& topo,
                         std::map<net::FlowId, RefFlow>& flows) {
  if (flows.empty()) return;
  std::vector<RefFlow*> unfrozen;
  unfrozen.reserve(flows.size());
  for (auto& [id, f] : flows) {
    f.rate = 0.0;
    unfrozen.push_back(&f);
  }
  std::vector<Rate> residual(topo.num_links());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    residual[i] = topo.link(static_cast<net::LinkId>(i)).capacity;
  }
  std::vector<int> link_count(topo.num_links(), 0);
  auto freeze = [&](RefFlow* f, Rate rate) {
    f->rate = std::max(rate, 1e-3);
    for (const net::LinkId lid : f->path) {
      residual[static_cast<std::size_t>(lid)] =
          std::max(0.0, residual[static_cast<std::size_t>(lid)] - f->rate);
    }
  };
  while (!unfrozen.empty()) {
    std::fill(link_count.begin(), link_count.end(), 0);
    for (const RefFlow* f : unfrozen) {
      for (const net::LinkId lid : f->path) {
        ++link_count[static_cast<std::size_t>(lid)];
      }
    }
    Rate share = std::numeric_limits<Rate>::infinity();
    for (std::size_t i = 0; i < link_count.size(); ++i) {
      if (link_count[i] == 0) continue;
      share = std::min(share, residual[i] / static_cast<Rate>(link_count[i]));
    }
    bool froze_capped = false;
    for (std::size_t i = 0; i < unfrozen.size();) {
      if (unfrozen[i]->cap <= share) {
        freeze(unfrozen[i], unfrozen[i]->cap);
        unfrozen[i] = unfrozen.back();
        unfrozen.pop_back();
        froze_capped = true;
      } else {
        ++i;
      }
    }
    if (froze_capped) continue;
    std::vector<char> is_bottleneck(link_count.size(), 0);
    for (std::size_t li = 0; li < link_count.size(); ++li) {
      if (link_count[li] > 0 &&
          residual[li] / static_cast<Rate>(link_count[li]) <=
              share * (1.0 + 1e-12)) {
        is_bottleneck[li] = 1;
      }
    }
    for (std::size_t i = 0; i < unfrozen.size();) {
      bool on_bottleneck = false;
      for (const net::LinkId lid : unfrozen[i]->path) {
        if (is_bottleneck[static_cast<std::size_t>(lid)]) {
          on_bottleneck = true;
          break;
        }
      }
      if (on_bottleneck) {
        freeze(unfrozen[i], share);
        unfrozen[i] = unfrozen.back();
        unfrozen.pop_back();
      } else {
        ++i;
      }
    }
  }
}

TEST_P(MaxMinPropertyTest, OptimizedSolverMatchesNaiveSolverBitForBit) {
  Rng rng(GetParam() ^ 0x5555);
  sim::Engine engine;
  RandomTopo rt = make_random_topology(rng);
  net::FlowOptions options;
  net::FlowManager fm(engine, rt.topo, options);
  std::map<net::FlowId, RefFlow> ref;

  auto check = [&] {
    naive_max_min_rates(rt.topo, ref);
    for (const auto& [id, f] : ref) {
      ASSERT_TRUE(fm.active(id));
      // Exact double equality, not EXPECT_NEAR: the overhaul's contract is
      // that it changed the solver's bookkeeping, not its arithmetic.
      EXPECT_EQ(fm.info(id).rate, f.rate) << "flow " << id;
    }
    // Per-host intrusive indexes must reproduce the FlowId-ordered sums.
    for (const auto h : rt.hosts) {
      Rate tx = 0.0, rx = 0.0;
      for (const auto& [id, f] : ref) {
        const auto info = fm.info(id);
        if (info.src == h) tx += f.rate;
        if (info.dst == h) rx += f.rate;
      }
      EXPECT_EQ(fm.host_tx_rate(h), tx) << "host " << h;
      EXPECT_EQ(fm.host_rx_rate(h), rx) << "host " << h;
    }
  };

  // Waves of starts, cancels, and capacity changes; rates are compared
  // after each wave (fm.info flushes the deferred recompute).
  std::vector<net::FlowId> live;
  for (int wave = 0; wave < 6; ++wave) {
    const int n_starts = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < n_starts; ++i) {
      const auto src =
          static_cast<std::size_t>(rng.uniform_int(0, rt.hosts.size() - 1));
      auto dst =
          static_cast<std::size_t>(rng.uniform_int(0, rt.hosts.size() - 2));
      if (dst >= src) ++dst;
      // Effectively infinite transfers: the reference tracks no byte
      // progress, so nothing may complete under it.
      const auto id = fm.start(rt.hosts[src], rt.hosts[dst], 1e15, nullptr);
      RefFlow rf;
      rf.path = rt.topo.route(rt.hosts[src], rt.hosts[dst]);
      rf.cap = options.tcp_window_bytes /
               std::max(fm.base_rtt(rt.hosts[src], rt.hosts[dst]), 1e-6);
      ref.emplace(id, std::move(rf));
      live.push_back(id);
    }
    if (wave % 2 == 1 && live.size() > 2) {
      const int n_cancels = static_cast<int>(
          rng.uniform_int(1, static_cast<std::int64_t>(live.size() / 2)));
      for (int c = 0; c < n_cancels; ++c) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        fm.cancel(live[pick]);
        ref.erase(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
    }
    if (wave == 3) {
      const auto l = static_cast<net::LinkId>(rng.uniform_int(
          0, static_cast<std::int64_t>(rt.topo.num_links()) - 1));
      rt.topo.set_link_capacity(l, rt.topo.link(l).capacity * 0.4);
      fm.invalidate_rates();
    }
    check();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinPropertyTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108, 109, 110));

// ================================================ hierarchical solver ====

// Drives the same flow sequence through a flat and a hierarchical manager
// over one shared topology, so FlowIds line up and rates are comparable.
struct SolverPair {
  net::FlowManager flat;
  net::FlowManager hier;

  SolverPair(sim::Engine& engine, net::Topology& topo)
      : flat(engine, topo, net::FlowOptions{}),
        hier(engine, topo, hier_options()) {}

  static net::FlowOptions hier_options() {
    net::FlowOptions o;
    o.solver = net::SolverMode::kHierarchical;
    return o;
  }

  net::FlowId start(net::VertexId src, net::VertexId dst) {
    const auto id = flat.start(src, dst, 1e15, nullptr);
    EXPECT_EQ(hier.start(src, dst, 1e15, nullptr), id);
    return id;
  }

  void cancel(net::FlowId id) {
    flat.cancel(id);
    hier.cancel(id);
  }
};

TEST(HierarchicalSolver, BitIdenticalToFlatOnPaperTopology) {
  // The scale-out contract mirrors PR 4's solver overhaul: on the paper's
  // 3-site testbed, where spanning WAN traffic couples every site, the
  // hierarchical solver must reproduce the flat progressive fill not
  // approximately but BIT-FOR-BIT — same freeze order, same operands,
  // identical doubles.
  sim::Engine engine;
  cluster::Cluster cl(engine, cluster::paper_cluster_spec());
  ASSERT_EQ(cl.topology().num_sites(), 3);
  SolverPair fms(engine, cl.topology());
  const auto v = [&](std::size_t node) { return cl.node(node).vertex(); };

  // Two long-lived cross-site flows chain sites 0-1 and 1-2: every site is
  // coupled, so the hierarchical coupled fill covers ALL flows. These two
  // are never cancelled.
  std::vector<net::FlowId> live{fms.start(v(0), v(2)), fms.start(v(3), v(5))};

  Rng rng(0xC0FFEE);
  const std::size_t n_nodes = cl.num_nodes();
  auto check = [&] {
    for (const auto id : live) {
      ASSERT_TRUE(fms.flat.active(id));
      ASSERT_TRUE(fms.hier.active(id));
      EXPECT_EQ(fms.hier.info(id).rate, fms.flat.info(id).rate)
          << "flow " << id;
    }
    const auto stats = fms.hier.solver_stats();
    EXPECT_EQ(stats.coupled_flows, live.size());
    EXPECT_EQ(stats.site_local_flows, 0u);
    EXPECT_EQ(stats.sites_solved, 0u);
  };
  check();

  for (int wave = 0; wave < 6; ++wave) {
    const int n_starts = static_cast<int>(rng.uniform_int(2, 8));
    for (int i = 0; i < n_starts; ++i) {
      const auto src = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_nodes) - 1));
      auto dst = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_nodes) - 2));
      if (dst >= src) ++dst;
      live.push_back(fms.start(v(src), v(dst)));
    }
    if (wave % 2 == 1 && live.size() > 4) {
      // Cancel only flows beyond the two spanning ones, keeping coupling.
      const int n_cancels = static_cast<int>(
          rng.uniform_int(1, static_cast<std::int64_t>(live.size() / 2)));
      for (int c = 0; c < n_cancels && live.size() > 2; ++c) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(2, static_cast<std::int64_t>(live.size()) - 1));
        fms.cancel(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
    }
    if (wave == 3) {
      const auto l = cl.node_uplink(1);
      cl.topology().set_link_capacity(l, cl.topology().link(l).capacity * 0.4);
      fms.flat.invalidate_rates();
      fms.hier.invalidate_rates();
    }
    check();
  }
}

TEST(HierarchicalSolver, DecomposedSitesMatchFlatAndReportStats) {
  // With cross-site traffic confined to sites 0 and 1, sites 2 and 3 are
  // solved as independent subproblems. The decomposition changes the
  // floating-point evaluation order across sites, so parity with flat is
  // near (1e-9 relative), not exact — the exactness guarantee belongs to
  // the coupled path above.
  exp::ScaledClusterOptions opts;
  opts.sites = 4;
  opts.nodes_per_site = 3;
  opts.nic_jitter = 0.3;  // distinct per-node shares: hardest fill order
  sim::Engine engine;
  cluster::Cluster cl(engine, exp::scaled_cluster_spec(opts));
  SolverPair fms(engine, cl.topology());
  const auto v = [&](std::size_t node) { return cl.node(node).vertex(); };

  // Three site-local flows per site (a ring within each site)...
  std::vector<net::FlowId> live;
  for (std::size_t s = 0; s < 4; ++s) {
    const std::size_t base = s * 3;
    for (std::size_t k = 0; k < 3; ++k) {
      live.push_back(fms.start(v(base + k), v(base + (k + 1) % 3)));
    }
  }
  // ...plus one WAN flow between sites 0 and 1 only.
  live.push_back(fms.start(v(0), v(3)));

  for (const auto id : live) {
    const Rate want = fms.flat.info(id).rate;
    EXPECT_NEAR(fms.hier.info(id).rate, want, std::abs(want) * 1e-9)
        << "flow " << id;
  }
  const auto stats = fms.hier.solver_stats();
  EXPECT_EQ(stats.coupled_flows, 7u);       // 1 WAN + 3 each in sites 0, 1
  EXPECT_EQ(stats.site_local_flows, 6u);    // sites 2 and 3
  EXPECT_EQ(stats.sites_solved, 2u);

  // Determinism across runs: a second hierarchical manager fed the same
  // sequence must agree with the first EXACTLY, no matter how the pool
  // interleaved the per-site fills.
  net::FlowManager again(engine, cl.topology(), SolverPair::hier_options());
  for (std::size_t s = 0; s < 4; ++s) {
    const std::size_t base = s * 3;
    for (std::size_t k = 0; k < 3; ++k) {
      again.start(v(base + k), v(base + (k + 1) % 3), 1e15, nullptr);
    }
  }
  again.start(v(0), v(3), 1e15, nullptr);
  for (const auto id : live) {
    EXPECT_EQ(again.info(id).rate, fms.hier.info(id).rate) << "flow " << id;
  }
}

class HierarchicalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HierarchicalPropertyTest, MatchesFlatOnRandomMultiSiteWorkloads) {
  Rng rng(GetParam() ^ 0x9e37);
  exp::ScaledClusterOptions opts;
  opts.sites = static_cast<int>(rng.uniform_int(2, 5));
  opts.nodes_per_site = static_cast<int>(rng.uniform_int(2, 4));
  opts.nic_jitter = 0.25;
  sim::Engine engine;
  cluster::Cluster cl(engine, exp::scaled_cluster_spec(opts));
  SolverPair fms(engine, cl.topology());
  const std::size_t n_nodes = cl.num_nodes();

  std::vector<net::FlowId> live;
  for (int wave = 0; wave < 5; ++wave) {
    const int n_starts = static_cast<int>(rng.uniform_int(2, 10));
    for (int i = 0; i < n_starts; ++i) {
      const auto src = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_nodes) - 1));
      auto dst = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_nodes) - 2));
      if (dst >= src) ++dst;
      live.push_back(
          fms.start(cl.node(src).vertex(), cl.node(dst).vertex()));
    }
    if (wave % 2 == 1 && live.size() > 2) {
      const int n_cancels = static_cast<int>(
          rng.uniform_int(1, static_cast<std::int64_t>(live.size() / 2)));
      for (int c = 0; c < n_cancels; ++c) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        fms.cancel(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
    }
    for (const auto id : live) {
      const Rate want = fms.flat.info(id).rate;
      EXPECT_NEAR(fms.hier.info(id).rate, want, std::abs(want) * 1e-9)
          << "flow " << id;
    }
    const auto stats = fms.hier.solver_stats();
    EXPECT_EQ(stats.coupled_flows + stats.site_local_flows, live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchicalPropertyTest,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

// ======================================================= cpu invariants ====

class CpuPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuPropertyTest, WorkIsConserved) {
  // Completion times must satisfy: integral of delivered rate == requested
  // work. We check a weaker corollary that is exact under processor
  // sharing: total work / cores <= makespan <= total work / min_rate.
  Rng rng(GetParam());
  sim::Engine engine;
  const double cores = rng.uniform(1.0, 8.0);
  cluster::CpuPool pool(engine, cores);
  double total_work = 0.0;
  int remaining = 0;
  for (int i = 0; i < 12; ++i) {
    const double work = rng.uniform(0.1, 5.0);
    total_work += work;
    ++remaining;
    pool.run(rng.uniform(0.5, 2.0), work, [&remaining] { --remaining; });
  }
  engine.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_GE(engine.now() + 1e-9, total_work / cores);
}

TEST_P(CpuPropertyTest, OrderIndependentOfCallbacks) {
  // Same workload, different callback bodies: identical completion time.
  Rng rng(GetParam() ^ 0xABCD);
  std::vector<std::pair<double, double>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.emplace_back(rng.uniform(0.5, 2.0), rng.uniform(0.1, 4.0));
  }
  auto run = [&](bool with_noise_callbacks) {
    sim::Engine engine;
    cluster::CpuPool pool(engine, 3.0);
    int noise = 0;
    for (const auto& [demand, work] : tasks) {
      pool.run(demand, work,
               with_noise_callbacks ? std::function<void()>([&] { ++noise; })
                                    : std::function<void()>(nullptr));
    }
    engine.run();
    return engine.now();
  };
  EXPECT_DOUBLE_EQ(run(false), run(true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuPropertyTest,
                         ::testing::Values(7, 11, 19, 23, 31));

// ================================================== model sanity sweeps ====

class ModelPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(ModelPropertyTest, PredictionsBoundedByTrainingRange) {
  // Tree ensembles cannot extrapolate beyond observed targets; the linear
  // model can, so it is checked with a wide multiple instead.
  const auto& [name, seed] = GetParam();
  Rng rng(seed);
  ml::Dataset data;
  for (int i = 0; i < 300; ++i) {
    const double x0 = rng.uniform(-2, 2);
    const double x1 = rng.uniform(-2, 2);
    data.add_row(std::vector<double>{x0, x1},
                 10.0 + 3.0 * x0 - x1 + 0.1 * rng.normal());
  }
  const auto model = ml::create_regressor(name);
  model->fit(data);
  const double y_min = *std::min_element(data.y().begin(), data.y().end());
  const double y_max = *std::max_element(data.y().begin(), data.y().end());
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x{rng.uniform(-3, 3), rng.uniform(-3, 3)};
    const double pred = model->predict_row(x);
    if (name == "linear") {
      EXPECT_GT(pred, y_min - 3.0 * (y_max - y_min));
      EXPECT_LT(pred, y_max + 3.0 * (y_max - y_min));
    } else if (name == "xgboost") {
      // Boosted sums can overshoot the target range slightly (residual
      // stacking), but never by much for squared loss.
      EXPECT_GE(pred, y_min - 0.2 * (y_max - y_min));
      EXPECT_LE(pred, y_max + 0.2 * (y_max - y_min));
    } else {
      // A single tree / bagged trees predict leaf means: strictly bounded.
      EXPECT_GE(pred, y_min - 1e-6);
      EXPECT_LE(pred, y_max + 1e-6);
    }
  }
}

TEST_P(ModelPropertyTest, SerializationPreservesAllPredictions) {
  const auto& [name, seed] = GetParam();
  Rng rng(seed ^ 0x9999);
  ml::Dataset data;
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.uniform(0, 1);
    const double x1 = rng.uniform(0, 1);
    data.add_row(std::vector<double>{x0, x1}, x0 * x1 + rng.normal() * 0.01);
  }
  const auto model = ml::create_regressor(name);
  model->fit(data);
  const auto restored =
      ml::model_from_json(Json::parse(ml::model_to_json(*model).dump()));
  for (std::size_t i = 0; i < data.size(); i += 7) {
    EXPECT_DOUBLE_EQ(restored->predict_row(data.row(i)),
                     model->predict_row(data.row(i)))
        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ModelPropertyTest,
    ::testing::Combine(::testing::Values("linear", "decision_tree",
                                         "random_forest", "xgboost"),
                       ::testing::Values(1u, 42u)));

// =========================================== environment reproducibility ====

class EnvPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvPropertyTest, WorldIsPureFunctionOfSeed) {
  const std::uint64_t seed = GetParam();
  auto fingerprint = [&] {
    exp::SimEnv env(seed);
    env.warmup();
    const auto snap = env.snapshot();
    double acc = 0.0;
    for (const auto& n : snap.nodes) {
      acc += n.rtt_mean * 1e6 + n.tx_rate + n.rx_rate + n.cpu_load * 1e3 +
             n.mem_available * 1e-6;
    }
    return acc;
  };
  EXPECT_DOUBLE_EQ(fingerprint(), fingerprint());
}

TEST_P(EnvPropertyTest, CounterfactualDurationsAreStrictlyReproducible) {
  const std::uint64_t seed = GetParam();
  spark::JobConfig job;
  job.input_records = 300000;
  job.executors = 3;
  auto run_on = [&](std::size_t node) {
    exp::SimEnv env(seed);
    env.warmup();
    return env.run_job(job, node, seed ^ 0xF00).duration();
  };
  for (const std::size_t node : {0u, 3u}) {
    EXPECT_DOUBLE_EQ(run_on(node), run_on(node));
  }
}

TEST_P(EnvPropertyTest, JobAlwaysTerminatesAndCleansUp) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  exp::SimEnv env(seed);
  env.warmup();
  const auto matrix = exp::paper_scenario_matrix();
  const auto& scenario = exp::sample_scenario(matrix, rng);
  const auto node = static_cast<std::size_t>(rng.uniform_int(0, 5));
  const auto result = env.run_job(scenario.config, node, seed);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.duration(), 1.0);
  EXPECT_LT(result.duration(), 600.0);
  for (std::size_t n = 0; n < 6; ++n) {
    const auto& cpu = env.cluster().node(n).cpu();
    // Only daemons and background pods may remain.
    EXPECT_LT(cpu.total_demand(), 6.0) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ====================================================== ranking physics ====

class PlacementPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PlacementPropertyTest, AddingLoadToWinnerNeverHelpsIt) {
  // Monotonicity: take the fastest node, saturate it with extra CPU +
  // traffic, and its counterfactual duration must not improve.
  const std::uint64_t seed = GetParam();
  spark::JobConfig job;
  job.input_records = 500000;
  job.executors = 3;
  auto duration_on = [&](std::size_t node, bool loaded) {
    exp::SimEnv env(seed);
    if (loaded) {
      env.cluster().node(node).cpu().add_persistent(5.0);
      cluster::BackgroundLoadOptions heavy;
      heavy.parallel_fetches = 8;
      heavy.mean_pause = 0.05;
      // Leaked into the env's lifetime via static storage is unnecessary:
      // run_job drives the engine, so a stack BackgroundLoad works.
      static thread_local std::unique_ptr<cluster::BackgroundLoad> bg;
      bg = std::make_unique<cluster::BackgroundLoad>(
          env.cluster(), node, (node + 3) % 6, heavy, Rng(seed));
      bg->start();
      env.warmup();
      const double d = env.run_job(job, node, seed ^ 0xAA).duration();
      bg.reset();
      return d;
    }
    env.warmup();
    return env.run_job(job, node, seed ^ 0xAA).duration();
  };
  const std::size_t node = seed % 6;
  EXPECT_GE(duration_on(node, true), duration_on(node, false) * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace lts
