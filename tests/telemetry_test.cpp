// Unit tests for the telemetry stack: series storage, TSDB queries,
// exporters, and snapshot construction.
#include <gtest/gtest.h>

#include "cluster/background.hpp"
#include "cluster/cluster.hpp"
#include "obs/metrics.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/promql.hpp"
#include "telemetry/series.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/tsdb.hpp"

namespace lts::telemetry {
namespace {

// ------------------------------------------------------------- series ----

TEST(Series, AppendAndLatest) {
  Series s(8);
  EXPECT_TRUE(s.empty());
  s.append(1.0, 10.0);
  s.append(2.0, 20.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.latest().v, 20.0);
  EXPECT_DOUBLE_EQ(s.at(0).v, 10.0);
}

TEST(Series, RingBufferEvictsOldest) {
  Series s(3);
  for (int i = 0; i < 5; ++i) s.append(i, i * 10.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.at(0).v, 20.0);  // 0 and 1 evicted
  EXPECT_DOUBLE_EQ(s.latest().v, 40.0);
}

TEST(Series, RangeQuery) {
  Series s(16);
  for (int i = 0; i < 10; ++i) s.append(i, i);
  const auto r = s.range(3.0, 6.0);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r.front().t, 3.0);
  EXPECT_DOUBLE_EQ(r.back().t, 6.0);
}

TEST(Series, NonMonotoneTimestampDropped) {
  // A sample older than the newest retained one is a late arrival (delayed
  // exporter pipeline): dropped, not a crash.
  Series s(4);
  EXPECT_TRUE(s.append(5.0, 1.0));
  EXPECT_FALSE(s.append(4.0, 99.0));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.latest().v, 1.0);
  EXPECT_TRUE(s.append(5.0, 2.0));  // equal allowed
}

TEST(Series, IndexOutOfRangeThrows) {
  Series s(4);
  EXPECT_THROW(s.latest(), Error);
  EXPECT_THROW(s.at(0), Error);
}

// --------------------------------------------------------------- tsdb ----

TEST(Tsdb, SeriesKeyEncoding) {
  EXPECT_EQ(encode_series_key("m", {}), "m{}");
  EXPECT_EQ(encode_series_key("m", {{"b", "2"}, {"a", "1"}}),
            "m{a=\"1\",b=\"2\"}");
}

TEST(Tsdb, LatestAndMissing) {
  Tsdb tsdb;
  const Labels labels{{"node", "n1"}};
  EXPECT_FALSE(tsdb.latest("cpu", labels).has_value());
  tsdb.append("cpu", labels, 1.0, 0.5);
  tsdb.append("cpu", labels, 2.0, 0.7);
  EXPECT_DOUBLE_EQ(tsdb.latest("cpu", labels).value(), 0.7);
  EXPECT_FALSE(tsdb.latest("cpu", Labels{{"node", "n2"}}).has_value());
}

TEST(Tsdb, EpochAdvancesOnEveryMutationPath) {
  // Snapshot caches key on epoch(): an unchanged value promises that every
  // query would return exactly what it returned last fetch. Each mutation
  // path must therefore advance it — accepted appends, DROPPED appends
  // (out-of-order samples still change num_samples_dropped, which callers
  // may read), and the explicit out-of-band bump.
  Tsdb tsdb;
  const Labels labels{{"node", "n1"}};
  std::uint64_t last = tsdb.epoch();
  const auto expect_bump = [&](const char* what) {
    EXPECT_GT(tsdb.epoch(), last) << what;
    last = tsdb.epoch();
  };
  tsdb.append("cpu", labels, 1.0, 0.5);
  expect_bump("accepted append");
  tsdb.append("cpu", labels, 0.5, 0.4);  // out of order: dropped
  EXPECT_EQ(tsdb.num_samples_dropped(), 1u);
  expect_bump("dropped append");
  tsdb.bump_epoch();
  expect_bump("explicit bump");
  // Queries are reads: no bump.
  (void)tsdb.latest("cpu", labels);
  (void)tsdb.rate("cpu", labels, 1.0, 1.0);
  EXPECT_EQ(tsdb.epoch(), last);
}

TEST(Tsdb, CounterRate) {
  Tsdb tsdb;
  const Labels labels{{"node", "n1"}};
  // Counter increasing 100 bytes/sec.
  for (int t = 0; t <= 30; t += 5) {
    tsdb.append("tx", labels, t, t * 100.0);
  }
  EXPECT_NEAR(tsdb.rate("tx", labels, 30.0, 30.0), 100.0, 1e-9);
  // Narrow window uses only the samples inside it.
  EXPECT_NEAR(tsdb.rate("tx", labels, 30.0, 10.0), 100.0, 1e-9);
  // Missing series or single sample -> 0.
  EXPECT_DOUBLE_EQ(tsdb.rate("nope", labels, 30.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(tsdb.rate("tx", labels, 2.0, 1.0), 0.0);
}

TEST(Tsdb, RateHandlesCounterReset) {
  // Prometheus rate() semantics: a sample lower than its predecessor means
  // the counter restarted from zero, so the post-reset value is the
  // increase since the reset. The rate must never go negative.
  auto& registry = obs::MetricsRegistry::global();
  auto& resets = obs::counter("telemetry_counter_resets_total");
  registry.set_enabled(true);
  const double before = resets.value();

  Tsdb tsdb;
  const Labels labels{{"node", "n1"}};
  // 0, 500, 1000 bytes ... crash ... restart at 0, 500, 1000.
  tsdb.append("tx", labels, 0.0, 0.0);
  tsdb.append("tx", labels, 5.0, 500.0);
  tsdb.append("tx", labels, 10.0, 1000.0);
  tsdb.append("tx", labels, 15.0, 0.0);  // reset
  tsdb.append("tx", labels, 20.0, 500.0);
  tsdb.append("tx", labels, 25.0, 1000.0);
  const double r = tsdb.rate("tx", labels, 25.0, 25.0);
  registry.set_enabled(false);

  // Naive (last-first)/dt would be (1000-0)/25 = 40 only by luck here; with
  // a window ending right after the reset it would be negative. The
  // corrected increase is 1000 + 0 + 1000 = 2000 over 25s = 80.
  EXPECT_NEAR(r, 80.0, 1e-9);
  EXPECT_GE(r, 0.0);
  EXPECT_DOUBLE_EQ(resets.value() - before, 1.0);

  // Window straddling just the reset: naive rate is negative, fixed is not.
  EXPECT_GE(tsdb.rate("tx", labels, 15.0, 5.0), 0.0);
}

TEST(Tsdb, OutOfOrderSamplesDroppedAndCounted) {
  auto& registry = obs::MetricsRegistry::global();
  auto& dropped = obs::counter("telemetry_out_of_order_dropped_total");
  registry.set_enabled(true);
  const double before = dropped.value();

  Tsdb tsdb;
  const Labels labels{{"node", "n1"}};
  tsdb.append("cpu", labels, 10.0, 0.5);
  tsdb.append("cpu", labels, 8.0, 0.9);  // late arrival: dropped
  tsdb.append("cpu", labels, 12.0, 0.6);
  registry.set_enabled(false);

  EXPECT_EQ(tsdb.num_samples_dropped(), 1u);
  EXPECT_DOUBLE_EQ(dropped.value() - before, 1.0);
  ASSERT_TRUE(tsdb.latest("cpu", labels).has_value());
  EXPECT_DOUBLE_EQ(tsdb.latest("cpu", labels).value(), 0.6);
  EXPECT_EQ(tsdb.find("cpu", labels)->size(), 2u);
}

TEST(Tsdb, OverTimeAggregations) {
  Tsdb tsdb;
  const Labels labels{};
  for (int t = 0; t < 10; ++t) tsdb.append("m", labels, t, t);
  EXPECT_DOUBLE_EQ(tsdb.avg_over_time("m", labels, 9.0, 4.0).value(), 7.0);
  EXPECT_DOUBLE_EQ(tsdb.max_over_time("m", labels, 9.0, 9.0).value(), 9.0);
  EXPECT_GT(tsdb.stddev_over_time("m", labels, 9.0, 9.0).value(), 0.0);
  EXPECT_FALSE(tsdb.avg_over_time("m", labels, 100.0, 1.0).has_value());
}

TEST(Tsdb, SelectByName) {
  Tsdb tsdb;
  tsdb.append("m", {{"node", "a"}}, 1.0, 1.0);
  tsdb.append("m", {{"node", "b"}}, 1.0, 2.0);
  tsdb.append("other", {}, 1.0, 3.0);
  EXPECT_EQ(tsdb.select("m").size(), 2u);
  EXPECT_EQ(tsdb.select("other").size(), 1u);
  EXPECT_TRUE(tsdb.select("missing").empty());
  EXPECT_EQ(tsdb.num_series(), 3u);
  EXPECT_EQ(tsdb.num_samples(), 3u);
}

// ---------------------------------------------------------- exporters ----

class ExporterFixture : public ::testing::Test {
 protected:
  ExporterFixture()
      : cluster_(engine_, cluster::paper_cluster_spec()),
        stack_(engine_, cluster_, ExporterOptions{}, Rng(9)) {}

  sim::Engine engine_;
  cluster::Cluster cluster_;
  TelemetryStack stack_;
};

TEST_F(ExporterFixture, NodeExporterEmitsAllMetrics) {
  engine_.run_until(20.0);
  for (const auto& name : cluster_.node_names()) {
    const Labels labels{{"node", name}};
    EXPECT_TRUE(stack_.tsdb().latest(kCpuLoadMetric, labels).has_value());
    EXPECT_TRUE(stack_.tsdb().latest(kMemAvailableMetric, labels).has_value());
    EXPECT_TRUE(stack_.tsdb().latest(kTxBytesMetric, labels).has_value());
    EXPECT_TRUE(stack_.tsdb().latest(kRxBytesMetric, labels).has_value());
  }
}

TEST_F(ExporterFixture, PingMeshCoversAllOrderedPairs) {
  engine_.run_until(20.0);
  const auto names = cluster_.node_names();
  int pairs = 0;
  for (const auto& src : names) {
    for (const auto& dst : names) {
      if (src == dst) continue;
      const auto rtt = stack_.tsdb().latest(
          kPingRttMetric, Labels{{"src", src}, {"dst", dst}});
      ASSERT_TRUE(rtt.has_value()) << src << "->" << dst;
      EXPECT_GT(*rtt, 0.0);
      ++pairs;
    }
  }
  EXPECT_EQ(pairs, 30);
}

TEST_F(ExporterFixture, PingReflectsTopologyAsymmetry) {
  engine_.run_until(30.0);
  const auto intra = stack_.tsdb().latest(
      kPingRttMetric, Labels{{"src", "node-1"}, {"dst", "node-2"}});
  const auto inter = stack_.tsdb().latest(
      kPingRttMetric, Labels{{"src", "node-1"}, {"dst", "node-3"}});
  ASSERT_TRUE(intra.has_value() && inter.has_value());
  EXPECT_LT(*intra, *inter);
}

TEST_F(ExporterFixture, CountersReflectBackgroundTraffic) {
  cluster::BackgroundLoad load(cluster_, 0, 2, {}, Rng(4));
  load.start();
  engine_.run_until(60.0);
  const double rx_rate = stack_.tsdb().rate(
      kRxBytesMetric, Labels{{"node", "node-1"}}, 60.0, 30.0);
  EXPECT_GT(rx_rate, 1e6);  // client pulls ~tens of MB/s
  const double quiet_rate = stack_.tsdb().rate(
      kRxBytesMetric, Labels{{"node", "node-4"}}, 60.0, 30.0);
  EXPECT_LT(quiet_rate, rx_rate / 10.0);
}

TEST_F(ExporterFixture, LoadAverageTracksCpuDemand) {
  cluster_.node(0).cpu().add_persistent(3.0);
  engine_.run_until(120.0);
  const auto load = stack_.tsdb().latest(kCpuLoadMetric,
                                         Labels{{"node", "node-1"}});
  ASSERT_TRUE(load.has_value());
  EXPECT_NEAR(*load, 3.0, 0.2);
}

// ------------------------------------------------------------ snapshot ----

TEST_F(ExporterFixture, SnapshotCarriesTable1Quantities) {
  cluster::BackgroundLoad load(cluster_, 0, 2, {}, Rng(4));
  load.start();
  engine_.run_until(60.0);
  const auto snapshot =
      build_snapshot(stack_.tsdb(), cluster_.node_names(), 60.0);
  ASSERT_EQ(snapshot.nodes.size(), 6u);
  const auto& n1 = snapshot.by_name("node-1");
  EXPECT_GT(n1.rtt_mean, 0.0);
  EXPECT_GE(n1.rtt_max, n1.rtt_mean);
  EXPECT_GE(n1.rtt_std, 0.0);
  EXPECT_GT(n1.rx_rate, 1e6);
  EXPECT_GT(n1.mem_available, 0.0);
  EXPECT_THROW(snapshot.by_name("node-9"), Error);
}

TEST(Snapshot, EmptyTsdbYieldsZeroedEntries) {
  Tsdb tsdb;
  const auto snapshot = build_snapshot(tsdb, {"a", "b"}, 10.0);
  ASSERT_EQ(snapshot.nodes.size(), 2u);
  EXPECT_DOUBLE_EQ(snapshot.nodes[0].rtt_mean, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.nodes[0].tx_rate, 0.0);
}

}  // namespace
}  // namespace lts::telemetry

// ------------------------------------------------------------- promql ----

namespace lts::telemetry {
namespace {

TEST(PromQL, ParsesInstantWithSelector) {
  const auto q = parse_promql("node_cpu_load{node=\"node-3\"}");
  EXPECT_EQ(q.function, PromQuery::Function::kInstant);
  EXPECT_EQ(q.metric, "node_cpu_load");
  EXPECT_EQ(q.labels.at("node"), "node-3");
  EXPECT_DOUBLE_EQ(q.range, 0.0);
}

TEST(PromQL, ParsesFunctionsAndDurations) {
  const auto rate = parse_promql(
      "rate(node_network_transmit_bytes_total{node=\"n1\"}[30s])");
  EXPECT_EQ(rate.function, PromQuery::Function::kRate);
  EXPECT_DOUBLE_EQ(rate.range, 30.0);
  const auto avg = parse_promql(
      "avg_over_time(ping_rtt_seconds{src=\"a\",dst=\"b\"}[1m])");
  EXPECT_EQ(avg.function, PromQuery::Function::kAvgOverTime);
  EXPECT_DOUBLE_EQ(avg.range, 60.0);
  EXPECT_EQ(avg.labels.size(), 2u);
  const auto mx = parse_promql("max_over_time(m[2h])");
  EXPECT_DOUBLE_EQ(mx.range, 7200.0);
}

TEST(PromQL, RoundTripsThroughToString) {
  const std::string text =
      "rate(node_network_transmit_bytes_total{node=\"n1\"}[30s])";
  const auto q = parse_promql(text);
  EXPECT_EQ(parse_promql(q.to_string()).to_string(), q.to_string());
}

TEST(PromQL, RejectsMalformedQueries) {
  EXPECT_THROW(parse_promql(""), Error);
  EXPECT_THROW(parse_promql("rate(m[30s)"), Error);
  EXPECT_THROW(parse_promql("m{node=}"), Error);
  EXPECT_THROW(parse_promql("m{node=\"x\"} trailing"), Error);
  EXPECT_THROW(parse_promql("percentile(m[5s])"), Error);
  EXPECT_THROW(parse_promql("rate(m[30x])"), Error);
}

TEST(PromQL, EvaluatesAgainstTsdb) {
  Tsdb tsdb;
  for (int t = 0; t <= 30; t += 5) {
    tsdb.append("tx", {{"node", "a"}}, t, t * 100.0);
    tsdb.append("tx", {{"node", "b"}}, t, t * 200.0);
  }
  // Fully labeled scalar.
  EXPECT_NEAR(promql_scalar("rate(tx{node=\"a\"}[30s])", tsdb, 30.0).value(),
              100.0, 1e-9);
  EXPECT_DOUBLE_EQ(promql_scalar("tx{node=\"b\"}", tsdb, 30.0).value(),
                   6000.0);
  // Unlabeled instant: one result per series.
  const auto all = eval_promql(parse_promql("tx"), tsdb, 30.0);
  EXPECT_EQ(all.size(), 2u);
  // Absent series -> empty.
  EXPECT_FALSE(promql_scalar("tx{node=\"zzz\"}", tsdb, 30.0).has_value());
  // Multi-match scalar is a caller error.
  EXPECT_THROW(promql_scalar("tx", tsdb, 30.0), Error);
}

TEST(PromQL, WorksAgainstLiveExporters) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::paper_cluster_spec());
  TelemetryStack stack(engine, cluster, ExporterOptions{}, Rng(3));
  engine.run_until(30.0);
  const auto rtt = promql_scalar(
      "avg_over_time(ping_rtt_seconds{src=\"node-1\",dst=\"node-3\"}[20s])",
      stack.tsdb(), 30.0);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_GT(*rtt, 0.05);  // cross-country
  const auto load = promql_scalar("node_cpu_load{node=\"node-2\"}",
                                  stack.tsdb(), 30.0);
  EXPECT_TRUE(load.has_value());
}

}  // namespace
}  // namespace lts::telemetry
