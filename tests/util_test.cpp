// Unit tests for the util module: rng, stats, csv, json, strings, thread
// pool, ascii tables.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <thread>

#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace lts {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, LognormalMedianIsMedian) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal_median(5.0, 0.5));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 5.0, 0.2);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(2.5));
  EXPECT_NEAR(stats.mean(), 2.5, 0.1);
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto z = rng.zipf(10, 1.5);
    ASSERT_GE(z, 0);
    ASSERT_LT(z, 10);
    ++counts[static_cast<std::size_t>(z)];
  }
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], 4 * counts[9]);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  const auto sample = rng.sample_without_replacement(20, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto i : sample) EXPECT_LT(i, 20u);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(37);
  Rng child = parent.split();
  // Drawing more from the child must not affect the parent's sequence.
  Rng parent2(37);
  (void)parent2.split();
  for (int i = 0; i < 16; ++i) (void)child();
  EXPECT_EQ(parent(), parent2());
}

// -------------------------------------------------------------- stats ----

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesBulk) {
  Rng rng(41);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Ema, ConvergesToConstantInput) {
  Ema ema(10.0);
  for (int t = 0; t <= 200; ++t) ema.update(t, 4.0);
  EXPECT_NEAR(ema.value(), 4.0, 1e-9);
}

TEST(Ema, DecayRate) {
  Ema ema(10.0);
  ema.update(0.0, 1.0);
  ema.update(10.0, 0.0);  // one time constant later
  EXPECT_NEAR(ema.value(), std::exp(-1.0), 1e-9);
}

TEST(Ema, BackwardsTimestampDroppedNotFatal) {
  // Out-of-order feeds (delayed telemetry pipelines) must not abort or
  // corrupt the average: the late sample is rejected and the state stays.
  Ema ema(10.0);
  EXPECT_TRUE(ema.update(5.0, 1.0));
  const double before = ema.value();
  EXPECT_FALSE(ema.update(3.0, 100.0));
  EXPECT_DOUBLE_EQ(ema.value(), before);
  EXPECT_TRUE(ema.update(5.0, before));  // equal timestamp still allowed
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.5);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> a{1, 2, 3, 4}, b{2, 4, 6, 8}, c{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, SpearmanMonotone) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{1, 4, 9, 16, 25};  // monotone, nonlinear
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

TEST(Stats, RanksAverageTies) {
  std::vector<double> xs{10, 20, 20, 30};
  const auto r = ranks_average_ties(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

// ---------------------------------------------------------------- csv ----

TEST(Csv, RoundTripWithQuoting) {
  CsvTable table({"name", "value", "note"});
  table.add_row({"plain", "1.5", "hello"});
  table.add_row({"with,comma", "2", "say \"hi\""});
  table.add_row({"multi\nline", "3", ""});
  std::ostringstream out;
  table.write(out);
  // Note: embedded newlines split rows in our reader, so only test fields
  // without newlines for full round-trip.
  CsvTable simple({"a", "b"});
  simple.add_row({"x,y", "z\"w\""});
  std::ostringstream out2;
  simple.write(out2);
  std::istringstream in(out2.str());
  const CsvTable parsed = CsvTable::read(in);
  EXPECT_EQ(parsed.num_rows(), 1u);
  EXPECT_EQ(parsed.cell(0, "a"), "x,y");
  EXPECT_EQ(parsed.cell(0, "b"), "z\"w\"");
}

TEST(Csv, NumericColumns) {
  CsvTable table({"x"});
  table.add_row({"1.5"});
  table.add_row({"-2e3"});
  const auto col = table.column_double("x");
  EXPECT_DOUBLE_EQ(col[0], 1.5);
  EXPECT_DOUBLE_EQ(col[1], -2000.0);
}

TEST(Csv, MissingColumnThrows) {
  CsvTable table({"x"});
  EXPECT_THROW(table.col("y"), Error);
  EXPECT_TRUE(table.has_col("x"));
  EXPECT_FALSE(table.has_col("y"));
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(Csv, ParseLineHonorsQuotes) {
  const auto fields = csv_parse_line("a,\"b,c\",\"d\"\"e\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

// --------------------------------------------------------------- json ----

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("42").as_double(), 42.0);
  EXPECT_EQ(Json::parse("-1.5e3").as_double(), -1500.0);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("\"hi\\n\"").as_string(), "hi\n");
}

TEST(Json, NestedRoundTrip) {
  Json j = Json::object();
  j["name"] = "model";
  j["weights"] = Json::from_doubles({1.5, -2.25, 0.0});
  Json inner = Json::object();
  inner["depth"] = 3;
  inner["ok"] = true;
  j["meta"] = inner;
  const std::string text = j.dump();
  const Json back = Json::parse(text);
  EXPECT_EQ(back.at("name").as_string(), "model");
  EXPECT_EQ(back.at("meta").at("depth").as_int(), 3);
  EXPECT_TRUE(back.at("meta").at("ok").as_bool());
  const auto w = back.at("weights").to_doubles();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[1], -2.25);
}

TEST(Json, PrettyPrintParses) {
  Json j = Json::object();
  j["a"] = Json::from_doubles({1, 2});
  j["b"] = "x";
  const Json back = Json::parse(j.dump(2));
  EXPECT_EQ(back.at("b").as_string(), "x");
}

TEST(Json, DoublePrecisionPreserved) {
  const double value = 0.12345678901234567;
  Json j(value);
  EXPECT_DOUBLE_EQ(Json::parse(j.dump()).as_double(), value);
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("1 2"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("{\"a\": 1}");
  EXPECT_THROW(j.at("a").as_string(), Error);
  EXPECT_THROW(j.at("missing"), Error);
  EXPECT_THROW(j.at("a").as_array(), Error);
}

TEST(Json, CopyOnWriteIsolation) {
  Json a = Json::object();
  a["k"] = 1;
  Json b = a;          // shares representation
  b["k"] = 2;          // must not affect a
  EXPECT_EQ(a.at("k").as_int(), 1);
  EXPECT_EQ(b.at("k").as_int(), 2);
}

TEST(Json, UnicodeEscape) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
}

// ------------------------------------------------------------ strings ----

TEST(StringUtil, Format) {
  EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strformat("%.2f", 1.239), "1.24");
}

TEST(StringUtil, SplitAndJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi\t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.0 B");
  EXPECT_EQ(human_bytes(1536), "1.5 KB");
  EXPECT_EQ(human_bytes(10.0 * 1024 * 1024), "10.0 MB");
}

TEST(StringUtil, HumanDuration) {
  EXPECT_EQ(human_duration(12.345), "12.35s");
  EXPECT_EQ(human_duration(90), "1m 30.0s");
}

// -------------------------------------------------------- thread pool ----

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  // lts-lint: shared-guarded(atomic: each index increments its own atomic slot)
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, SubmitReturnsFuture) {
  ThreadPool pool(2);
  std::atomic<int> x{0};
  auto f = pool.submit([&] { x = 42; });
  f.wait();
  EXPECT_EQ(x.load(), 42);
}

TEST(ThreadPool, SingleThreadDegradesGracefully) {
  ThreadPool pool(1);
  int sum = 0;
  // lts-lint: shared-guarded(partitioned: a single-worker pool runs all indices sequentially on the caller, so the plain int is never shared)
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A parallel_for issued from inside a worker used to enqueue subtasks on
  // the same pool and block waiting for them — with every worker doing the
  // same, nobody was left to run anything (deadlock). Nested calls now
  // detect the worker context and run inline. Guard with a watchdog so a
  // regression fails the test instead of hanging the suite.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::atomic<bool> finished{false};
  // lts-lint: thread-ok(the watchdog must live outside the pool under test: a deadlocked pool could never run it)
  std::thread watchdog([&] {
    for (int i = 0; i < 200 && !finished.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!finished.load()) {
      std::fprintf(stderr, "nested parallel_for deadlocked\n");
      std::abort();
    }
  });
  // lts-lint: shared-guarded(atomic: the only shared write is the done counter)
  pool.parallel_for(4, [&](std::size_t) {
    // lts-lint: shared-guarded(atomic: increments the shared done counter)
    pool.parallel_for(8, [&](std::size_t) { done.fetch_add(1); });
  });
  finished = true;
  watchdog.join();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, NestedParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      // lts-lint: shared-guarded(partitioned: lambdas only read their loop indices; the pool reference is the sole capture)
      pool.parallel_for(4,
                        [&](std::size_t i) {
                          // lts-lint: shared-guarded(partitioned: reads indices only; error propagation is synchronized inside parallel_for)
                          pool.parallel_for(4, [&](std::size_t j) {
                            if (i == 1 && j == 2) throw Error("inner boom");
                          });
                        }),
      Error);
}

TEST(ThreadPool, ConcurrentAndNestedParallelForIsRaceFree) {
  // Hammers every parallel_for execution path at once: an outer pool fans
  // out onto an inner pool (cross-pool calls take the submit path, since
  // outer workers are not inner workers), and the innermost level nests
  // within inner workers (inline path). Exists chiefly for
  // LTS_SANITIZE=thread builds, where TSan verifies the queue, the
  // work-stealing counter, and error propagation are fully synchronized
  // under concurrent callers.
  ThreadPool inner(3);
  ThreadPool outer(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 4; ++round) {
    // lts-lint: shared-guarded(atomic: every shared write lands on the total counter)
    outer.parallel_for(8, [&](std::size_t) {
      // lts-lint: shared-guarded(atomic: forwards increments of the shared atomic counter)
      inner.parallel_for(4, [&](std::size_t) {
        // lts-lint: shared-guarded(atomic: increments the shared atomic counter)
        inner.parallel_for(2, [&](std::size_t) { total.fetch_add(1); });
      });
    });
  }
  EXPECT_EQ(total.load(), 4 * 8 * 4 * 2);
}

// -------------------------------------------------------------- table ----

TEST(AsciiTable, RendersAligned) {
  AsciiTable t({"Method", "Top-1"});
  t.add_row({"kube", "0.16"});
  t.add_row_numeric("rf", {0.7}, 3);
  const std::string out = t.render("Table");
  EXPECT_NE(out.find("Table"), std::string::npos);
  EXPECT_NE(out.find("| kube"), std::string::npos);
  EXPECT_NE(out.find("0.700"), std::string::npos);
}

TEST(AsciiTable, WidthMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only"}), Error);
}

}  // namespace
}  // namespace lts

// ------------------------------------------------------------- logging ----

namespace lts {
namespace {

TEST(Logging, LevelGateWorks) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold statements must not evaluate their stream arguments.
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  LTS_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  LTS_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
  set_log_level(before);
}

TEST(Logging, OffSilencesEverything) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  LTS_LOG(kError) << [&] { ++evaluations; return 1; }();
  EXPECT_EQ(evaluations, 0);
  set_log_level(before);
}

}  // namespace
}  // namespace lts
