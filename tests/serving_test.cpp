// Differential tests for the batched serving path.
//
// The flattened predict_batch kernel, the epoch-keyed snapshot cache, and
// LtsScheduler::schedule_many are all pure optimizations: every test here
// pins them against the scalar reference implementations (predict_row's
// pointer walk, an uncached TSDB sweep, N sequential schedule() calls) and
// demands bit-identical results — EXPECT_EQ on doubles, not EXPECT_NEAR.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/features.hpp"
#include "core/fetcher.hpp"
#include "core/scheduler.hpp"
#include "exp/envgen.hpp"
#include "ml/model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

// ------------------------------------------------ predict_batch kernels ----

namespace lts::ml {
namespace {

/// Synthetic regression corpus (linear + interaction + noise), same shape
/// the ml_test suite trains on.
Dataset make_synthetic(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.set_feature_names({"x0", "x1", "x2", "x3"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1, 1);
    const double x1 = rng.uniform(-1, 1);
    const double x2 = rng.uniform(0, 2);
    const double x3 = rng.uniform(-1, 1);
    // Positive offset keeps the target log-transformable (duration-like).
    const double y = 10.0 + 3.0 * x0 - 2.0 * x1 + 0.5 * x2 + 2.0 * x0 * x1 +
                     0.05 * rng.normal();
    data.add_row(std::vector<double>{x0, x1, x2, x3}, y);
  }
  return data;
}

/// Row-major query block: half the rows are copied verbatim from the
/// training corpus (stressing the x <= threshold boundary, where any
/// comparison sloppiness in the flat kernel would flip a branch), half are
/// fresh uniform draws slightly outside the training range.
std::vector<double> make_query_block(const Dataset& data, std::size_t rows,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> block;
  const std::size_t cols = data.num_features();
  block.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    if (r % 2 == 0) {
      const auto row = data.row(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1)));
      block.insert(block.end(), row.begin(), row.end());
    } else {
      for (std::size_t c = 0; c < cols; ++c) {
        block.push_back(rng.uniform(-1.5, 2.5));
      }
    }
  }
  return block;
}

/// The differential itself: predict_batch over the block must equal
/// predict_row on every row, to the last bit.
void expect_batch_matches_rows(const Regressor& model,
                               const std::vector<double>& block,
                               std::size_t rows, std::size_t cols,
                               const std::string& context) {
  std::vector<double> batched(rows, -1.0);
  model.predict_batch(block, rows, cols, batched);
  const std::span<const double> x(block);
  for (std::size_t r = 0; r < rows; ++r) {
    const double scalar = model.predict_row(x.subspan(r * cols, cols));
    EXPECT_EQ(batched[r], scalar) << context << " row " << r;
  }
}

TEST(PredictBatch, MatchesPredictRowForEveryFamily) {
  // Block sizes straddle the kernel's internal tile (64): a lone row, a
  // partial tile, exact, one-over, and two-tiles-plus-change.
  const std::size_t sizes[] = {1, 7, 64, 65, 130};
  for (const auto& family : registered_regressors()) {
    for (const bool log_target : {false, true}) {
      Json params = Json::object();
      params["log_target"] = log_target;
      const auto model = create_regressor(family, params);
      const auto data = make_synthetic(400, 97 + (log_target ? 1 : 0));
      model->fit(data);
      for (const std::size_t rows : sizes) {
        const auto block = make_query_block(data, rows, 1234 + rows);
        expect_batch_matches_rows(
            *model, block, rows, data.num_features(),
            family + (log_target ? "+log" : "") + " fit");
      }
    }
  }
}

TEST(PredictBatch, MatchesPredictRowAcrossRandomizedEnsembles) {
  // Many small randomized forests/GBTs: different shapes, depths, and
  // split layouts all flatten to the same predictions.
  Rng meta(5150);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(trial);
    const auto data = make_synthetic(
        120 + 60 * static_cast<std::size_t>(trial % 3), seed);
    for (const auto& family : {"decision_tree", "random_forest", "xgboost"}) {
      const auto model = create_regressor(family);
      model->fit(data);
      const std::size_t rows =
          static_cast<std::size_t>(meta.uniform_int(1, 150));
      const auto block = make_query_block(data, rows, seed * 31);
      expect_batch_matches_rows(*model, block, rows, data.num_features(),
                                std::string(family) + " trial " +
                                    std::to_string(trial));
    }
  }
}

TEST(PredictBatch, MatchesPredictRowAfterRefit) {
  // refit() rebuilds the flat arrays in place (forest: tree replacement;
  // GBT: continued boosting); the differential must survive the swap.
  for (const auto& family : {"random_forest", "xgboost"}) {
    const auto model = create_regressor(family);
    const auto first = make_synthetic(300, 41);
    model->fit(first);
    const auto window = make_synthetic(300, 42);
    model->refit(window);
    const auto block = make_query_block(window, 130, 43);
    expect_batch_matches_rows(*model, block, 130, window.num_features(),
                              std::string(family) + " post-refit");
  }
}

TEST(PredictBatch, MatchesPredictRowAfterEnvelopeRoundTrip) {
  // A model revived from its serialized envelope must rebuild its flat
  // arrays on from_json and agree with both its own predict_row and the
  // original model's batch output.
  for (const auto& family : {"decision_tree", "random_forest", "xgboost"}) {
    const auto data = make_synthetic(300, 55);
    const auto model = create_regressor(family);
    model->fit(data);
    const auto revived = model_from_json(model_to_json(*model));
    const std::size_t rows = 96;
    const auto block = make_query_block(data, rows, 56);
    expect_batch_matches_rows(*revived, block, rows, data.num_features(),
                              std::string(family) + " round-trip");
    std::vector<double> original(rows), restored(rows);
    model->predict_batch(block, rows, data.num_features(), original);
    revived->predict_batch(block, rows, data.num_features(), restored);
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(original[r], restored[r]) << family << " row " << r;
    }
  }
}

TEST(PredictBatch, MatrixPredictAgreesWithBatch) {
  // predict(Matrix) routes through predict_batch; pin the equivalence so
  // existing callers inherited the kernel without a behavior change.
  const auto data = make_synthetic(250, 77);
  const auto model = create_regressor("random_forest");
  model->fit(data);
  const auto via_matrix = model->predict(data.x());
  std::vector<double> via_batch(data.size());
  model->predict_batch(data.x().data(), data.size(), data.num_features(),
                       via_batch);
  ASSERT_EQ(via_matrix.size(), via_batch.size());
  for (std::size_t r = 0; r < via_batch.size(); ++r) {
    EXPECT_EQ(via_matrix[r], via_batch[r]);
  }
}

}  // namespace
}  // namespace lts::ml

// --------------------------------- schedule_many and the snapshot cache ----

namespace lts::core {
namespace {

/// Model trained so predicted duration tracks cpu_load: rankings are
/// non-trivial (not constant) and deterministic.
std::shared_ptr<const ml::Regressor> load_tracking_model(std::uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.set_feature_names(FeatureConstructor::feature_names());
  telemetry::NodeTelemetry t;
  t.node = "x";
  t.rtt_mean = 0.03;
  t.tx_rate = 50e6;
  t.rx_rate = 20e6;
  t.mem_available = 6.0 * 1024 * 1024 * 1024;
  spark::JobConfig config;
  for (int i = 0; i < 400; ++i) {
    t.cpu_load = rng.uniform(0.0, 6.0);
    t.tx_rate = rng.uniform(1e6, 200e6);
    config.app = spark::kAllAppTypes[static_cast<std::size_t>(i) %
                                     spark::kNumAppTypes];
    config.input_records = 100000 * (1 + i % 8);
    const auto x = FeatureConstructor::build(t, config);
    data.add_row(x, 2.0 + t.cpu_load + t.tx_rate / 100e6 +
                        config.input_records / 4e5);
  }
  auto model = ml::create_regressor("random_forest");
  model->fit(data);
  return std::shared_ptr<const ml::Regressor>(std::move(model));
}

std::vector<spark::JobConfig> make_queue(std::size_t n) {
  std::vector<spark::JobConfig> configs;
  for (std::size_t q = 0; q < n; ++q) {
    spark::JobConfig config;
    config.app = spark::kAllAppTypes[q % spark::kNumAppTypes];
    config.input_records = 200000 * (1 + static_cast<long long>(q % 5));
    config.executors = 2 + static_cast<int>(q % 3);
    config.validate();
    configs.push_back(config);
  }
  return configs;
}

void expect_decisions_equal(const Decision& a, const Decision& b,
                            const std::string& context) {
  EXPECT_EQ(a.used_fallback, b.used_fallback) << context;
  EXPECT_EQ(a.stale_demoted, b.stale_demoted) << context;
  ASSERT_EQ(a.ranking.size(), b.ranking.size()) << context;
  for (std::size_t i = 0; i < a.ranking.size(); ++i) {
    EXPECT_EQ(a.ranking[i].node, b.ranking[i].node) << context << " #" << i;
    EXPECT_EQ(a.ranking[i].predicted_duration,
              b.ranking[i].predicted_duration)
        << context << " #" << i;
  }
}

TEST(ScheduleMany, EqualsSequentialScheduleCalls) {
  exp::SimEnv env(23);
  env.warmup();
  const SimTime now = env.engine().now();
  LtsScheduler scheduler(
      TelemetryFetcher(env.tsdb(), env.node_names()),
      load_tracking_model(6), FeatureSet::kTable1);
  const auto configs = make_queue(8);

  std::vector<Decision> sequential;
  for (const auto& config : configs) {
    sequential.push_back(scheduler.schedule(config, now));
  }
  const auto batched = scheduler.schedule_many(configs, now);
  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t q = 0; q < configs.size(); ++q) {
    expect_decisions_equal(batched[q], sequential[q],
                           "queue slot " + std::to_string(q));
  }
}

TEST(ScheduleMany, ReplicaQueueEqualsSequentialScheduleCalls) {
  // Queues full of identical pods (deployment replicas) drive the batch
  // path's exact-row dedup: each distinct (pod, node) feature row is
  // scored once and fanned out. The fan-out must be invisible — every
  // replica's decision identical to its own sequential schedule() call.
  exp::SimEnv env(29);
  env.warmup();
  const SimTime now = env.engine().now();
  LtsScheduler scheduler(
      TelemetryFetcher(env.tsdb(), env.node_names()),
      load_tracking_model(6), FeatureSet::kTable1);
  const auto templates = make_queue(3);
  std::vector<spark::JobConfig> configs;
  for (std::size_t q = 0; q < 12; ++q) {
    configs.push_back(templates[q % templates.size()]);  // interleaved
  }

  std::vector<Decision> sequential;
  for (const auto& config : configs) {
    sequential.push_back(scheduler.schedule(config, now));
  }
  const auto batched = scheduler.schedule_many(configs, now);
  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t q = 0; q < configs.size(); ++q) {
    expect_decisions_equal(batched[q], sequential[q],
                           "replica queue slot " + std::to_string(q));
  }
}

TEST(ScheduleMany, EmitsSameTraceSpansAsSequentialCalls) {
  exp::SimEnv env(24);
  env.warmup();
  const SimTime now = env.engine().now();
  LtsScheduler scheduler(
      TelemetryFetcher(env.tsdb(), env.node_names()),
      load_tracking_model(6), FeatureSet::kTable1);
  const auto configs = make_queue(5);

  auto& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  for (const auto& config : configs) scheduler.schedule(config, now);
  std::vector<obs::SpanRecord> sequential;
  for (std::size_t i = 0; i < tracer.num_spans(); ++i) {
    sequential.push_back(tracer.span(i));
  }
  tracer.clear();
  scheduler.schedule_many(configs, now);
  ASSERT_EQ(tracer.num_spans(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const auto& batch_span = tracer.span(i);
    const auto& seq_span = sequential[i];
    EXPECT_EQ(batch_span.name, seq_span.name) << i;
    EXPECT_EQ(batch_span.sim_begin, seq_span.sim_begin) << i;
    EXPECT_EQ(batch_span.sim_end, seq_span.sim_end) << i;
    ASSERT_EQ(batch_span.phases.size(), seq_span.phases.size()) << i;
    for (std::size_t p = 0; p < seq_span.phases.size(); ++p) {
      EXPECT_EQ(batch_span.phases[p].name, seq_span.phases[p].name)
          << i << "/" << p;
      EXPECT_EQ(batch_span.phases[p].sim_time, seq_span.phases[p].sim_time)
          << i << "/" << p;
    }
  }
  tracer.set_enabled(false);
  tracer.clear();
}

TEST(ScheduleMany, CountsSameMetricsAsSequentialCalls) {
  exp::SimEnv env(25);
  env.warmup();
  const SimTime now = env.engine().now();
  LtsScheduler scheduler(
      TelemetryFetcher(env.tsdb(), env.node_names()),
      load_tracking_model(6), FeatureSet::kTable1);
  const auto configs = make_queue(6);
  auto& registry = obs::MetricsRegistry::global();
  auto& decisions = obs::counter("lts_scheduler_decisions_total");
  registry.set_enabled(true);
  const double before_seq = decisions.value();
  for (const auto& config : configs) scheduler.schedule(config, now);
  const double seq_delta = decisions.value() - before_seq;
  const double before_batch = decisions.value();
  scheduler.schedule_many(configs, now);
  const double batch_delta = decisions.value() - before_batch;
  registry.set_enabled(false);
  EXPECT_EQ(seq_delta, static_cast<double>(configs.size()));
  EXPECT_EQ(batch_delta, seq_delta);
}

TEST(ScheduleMany, FallbackQueueEqualsSequentialFallbacks) {
  // No model at all: with fallback enabled every decision is the spreading
  // heuristic, in batch exactly as in sequence.
  exp::SimEnv env(26);
  env.warmup();
  const SimTime now = env.engine().now();
  FallbackOptions fallback;
  fallback.enabled = true;
  LtsScheduler scheduler(TelemetryFetcher(env.tsdb(), env.node_names()),
                         nullptr, FeatureSet::kTable1, 0.0, fallback);
  const auto configs = make_queue(4);
  std::vector<Decision> sequential;
  for (const auto& config : configs) {
    sequential.push_back(scheduler.schedule(config, now));
  }
  const auto batched = scheduler.schedule_many(configs, now);
  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t q = 0; q < configs.size(); ++q) {
    EXPECT_TRUE(batched[q].used_fallback);
    expect_decisions_equal(batched[q], sequential[q],
                           "fallback slot " + std::to_string(q));
  }
}

TEST(ScheduleMany, RiskAversionPathEqualsSequential) {
  // risk_aversion > 0 takes the per-row uncertainty path inside
  // schedule_batch; it must still match sequential calls exactly.
  exp::SimEnv env(27);
  env.warmup();
  const SimTime now = env.engine().now();
  LtsScheduler scheduler(
      TelemetryFetcher(env.tsdb(), env.node_names()),
      load_tracking_model(6), FeatureSet::kTable1, /*risk_aversion=*/0.7);
  const auto configs = make_queue(4);
  std::vector<Decision> sequential;
  for (const auto& config : configs) {
    sequential.push_back(scheduler.schedule(config, now));
  }
  const auto batched = scheduler.schedule_many(configs, now);
  for (std::size_t q = 0; q < configs.size(); ++q) {
    expect_decisions_equal(batched[q], sequential[q],
                           "risk slot " + std::to_string(q));
  }
}

// ------------------------------------------------ snapshot cache keying ----

TEST(SnapshotCache, SameEpochSameTimeServesSharedSnapshot) {
  exp::SimEnv env(31);
  env.warmup();
  const SimTime now = env.engine().now();
  TelemetryFetcher fetcher(env.tsdb(), env.node_names());
  auto& registry = obs::MetricsRegistry::global();
  auto& hits = obs::counter("lts_snapshot_cache_hits_total");
  auto& misses = obs::counter("lts_snapshot_cache_misses_total");
  registry.set_enabled(true);
  const double hits0 = hits.value();
  const double misses0 = misses.value();
  const auto first = fetcher.fetch_shared(now);
  const auto second = fetcher.fetch_shared(now);
  registry.set_enabled(false);
  // Pointer equality is the proof that the TSDB was swept exactly once.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(misses.value() - misses0, 1.0);
  EXPECT_EQ(hits.value() - hits0, 1.0);
}

TEST(SnapshotCache, CopiesOfTheFetcherShareOneCache) {
  // LtsScheduler holds its fetcher by value; the copy must hit the cache
  // its source populated (and vice versa).
  exp::SimEnv env(32);
  env.warmup();
  const SimTime now = env.engine().now();
  TelemetryFetcher fetcher(env.tsdb(), env.node_names());
  const TelemetryFetcher copy = fetcher;
  const auto a = fetcher.fetch_shared(now);
  const auto b = copy.fetch_shared(now);
  EXPECT_EQ(a.get(), b.get());
}

TEST(SnapshotCache, EpochAdvanceOnScrapeInvalidates) {
  exp::SimEnv env(33);
  env.warmup();
  const SimTime now = env.engine().now();
  TelemetryFetcher fetcher(env.tsdb(), env.node_names());
  const auto before = fetcher.fetch_shared(now);
  const std::uint64_t epoch_before = env.tsdb().epoch();
  // Exporters scrape every ~2 simulated seconds; running the engine
  // forward lands new samples and must advance the epoch.
  env.engine().run_until(now + 10.0);
  ASSERT_GT(env.tsdb().epoch(), epoch_before);
  const auto after = fetcher.fetch_shared(now);
  EXPECT_NE(before.get(), after.get());
}

TEST(SnapshotCache, DifferentFetchTimeMisses) {
  exp::SimEnv env(34);
  env.warmup();
  const SimTime now = env.engine().now();
  TelemetryFetcher fetcher(env.tsdb(), env.node_names());
  const auto at_now = fetcher.fetch_shared(now);
  const auto later = fetcher.fetch_shared(now + 1.0);
  EXPECT_NE(at_now.get(), later.get());
}

TEST(SnapshotCache, NodeRecoveryInvalidates) {
  // recover_node resets host counters without appending a sample; the
  // explicit epoch bump must still force a rebuild.
  exp::SimEnv env(35);
  env.warmup();
  const SimTime now = env.engine().now();
  TelemetryFetcher fetcher(env.tsdb(), env.node_names());
  const auto before = fetcher.fetch_shared(now);
  const std::uint64_t epoch_before = env.tsdb().epoch();
  env.fault_injector().crash_node(env.node_names()[0]);
  env.fault_injector().recover_node(env.node_names()[0]);
  EXPECT_GT(env.tsdb().epoch(), epoch_before);
  const auto after = fetcher.fetch_shared(now);
  EXPECT_NE(before.get(), after.get());
}

TEST(SnapshotCache, ExporterSilenceInvalidates) {
  exp::SimEnv env(36);
  env.warmup();
  const SimTime now = env.engine().now();
  TelemetryFetcher fetcher(env.tsdb(), env.node_names());
  const auto before = fetcher.fetch_shared(now);
  env.fault_injector().silence_exporter(env.node_names()[1]);
  const auto silenced = fetcher.fetch_shared(now);
  EXPECT_NE(before.get(), silenced.get());
  env.fault_injector().unsilence_exporter(env.node_names()[1]);
  const auto restored = fetcher.fetch_shared(now);
  EXPECT_NE(silenced.get(), restored.get());
}

TEST(SnapshotCache, DisabledCacheSweepsEveryFetch) {
  exp::SimEnv env(37);
  env.warmup();
  const SimTime now = env.engine().now();
  TelemetryFetcher fetcher(env.tsdb(), env.node_names());
  fetcher.set_cache_enabled(false);
  auto& registry = obs::MetricsRegistry::global();
  auto& misses = obs::counter("lts_snapshot_cache_misses_total");
  registry.set_enabled(true);
  const double misses0 = misses.value();
  const auto a = fetcher.fetch_shared(now);
  const auto b = fetcher.fetch_shared(now);
  registry.set_enabled(false);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(misses.value() - misses0, 2.0);
}

TEST(SnapshotCache, CachedSnapshotDemotesStaleNodesLikeFreshFetch) {
  // Regression for the staleness/caching agreement: the degradation
  // pipeline is a function of `now`, so a snapshot cached at (epoch, now)
  // must carry the same staleness annotations a fresh sweep at that `now`
  // would produce — and a scheduler reusing the cached snapshot under
  // demote_stale must make the identical decision.
  exp::SimEnv env(38);
  env.warmup();
  const std::string victim = env.node_names()[2];
  env.fault_injector().silence_exporter(victim);
  const SimTime start = env.engine().now();
  env.engine().run_until(start + 30.0);  // > max_staleness of 10s
  const SimTime now = env.engine().now();

  DegradationOptions degradation;
  degradation.enabled = true;
  TelemetryFetcher cached(env.tsdb(), env.node_names(), {}, degradation);
  TelemetryFetcher uncached(env.tsdb(), env.node_names(), {}, degradation);
  uncached.set_cache_enabled(false);

  const auto warm = cached.fetch_shared(now);
  const auto reused = cached.fetch_shared(now);
  ASSERT_EQ(warm.get(), reused.get());
  const auto fresh = uncached.fetch_shared(now);
  ASSERT_EQ(reused->nodes.size(), fresh->nodes.size());
  bool saw_stale = false;
  for (std::size_t i = 0; i < fresh->nodes.size(); ++i) {
    EXPECT_EQ(reused->nodes[i].stale, fresh->nodes[i].stale) << i;
    EXPECT_EQ(reused->nodes[i].cpu_load, fresh->nodes[i].cpu_load) << i;
    EXPECT_EQ(reused->nodes[i].tx_rate, fresh->nodes[i].tx_rate) << i;
    saw_stale = saw_stale || fresh->nodes[i].stale;
  }
  ASSERT_TRUE(saw_stale) << "silenced exporter never went stale";

  FallbackOptions fallback;
  fallback.enabled = true;  // demote_stale defaults on
  const auto model = load_tracking_model(6);
  LtsScheduler via_cache(cached, model, FeatureSet::kTable1, 0.0, fallback);
  LtsScheduler via_sweep(uncached, model, FeatureSet::kTable1, 0.0,
                         fallback);
  const auto configs = make_queue(3);
  // Two passes through the cached scheduler: the second reuses the warm
  // snapshot end to end. Both must equal the cache-bypassing scheduler.
  const auto first_pass = via_cache.schedule_many(configs, now);
  const auto second_pass = via_cache.schedule_many(configs, now);
  const auto swept = via_sweep.schedule_many(configs, now);
  for (std::size_t q = 0; q < configs.size(); ++q) {
    expect_decisions_equal(second_pass[q], first_pass[q],
                           "cached re-read " + std::to_string(q));
    expect_decisions_equal(second_pass[q], swept[q],
                           "cache vs sweep " + std::to_string(q));
    EXPECT_GT(second_pass[q].stale_demoted, 0) << q;
  }
}

}  // namespace
}  // namespace lts::core
