// Tests for tools/lts_lint: every rule R1-R8 must fire on its seeded
// fixture with the right rule id, every waivable rule must be silenceable
// by a justified waiver, malformed and stale waivers must be diagnosed,
// the cross-file index must resolve companions and member access through
// the fixture tree, parallel lint_tree must match serial byte for byte,
// baseline diffs must suppress exactly the accepted findings, and the
// repository itself must lint clean (the integration guarantee the CI
// lint job enforces).
//
// Fixtures live in tests/lint_fixtures/ and are never compiled; they are
// linted under *virtual* paths because rule scoping is path-driven (the
// same snippet is a violation in src/simcore/ and fine in tools/).
#include "lts_lint/linter.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lts_lint/rules.hpp"
#include "util/json.hpp"

namespace {

using lts::lint::Diagnostic;
using lts::lint::lint_text;
using lts::lint::lint_tree;
using lts::lint::Options;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string read_fixture(const std::string& name) {
  return read_file(std::string(LTS_FIXTURE_DIR) + "/" + name);
}

/// 1-based line number of the first line containing `marker`.
std::size_t line_of(const std::string& text, const std::string& marker) {
  std::istringstream in(text);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    ++n;
    if (line.find(marker) != std::string::npos) return n;
  }
  ADD_FAILURE() << "marker not found: " << marker;
  return 0;
}

bool has_diag(const std::vector<Diagnostic>& diags, const std::string& rule,
              std::size_t line) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == rule && d.line == line;
  });
}

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

// ------------------------------------------------------------------- R1 ----

TEST(LintR1, FiresOnEveryNondeterminismSource) {
  const std::string text = read_fixture("r1_nondeterminism.cpp");
  const auto diags = lint_text("src/simcore/fixture.cpp", text);
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "std::random_device rd")));
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "std::srand")));
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "int noise = rand()")));
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "steady_clock::now")));
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "system_clock::now")));
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "std::getenv")));
  EXPECT_EQ(diags.size(), 6u);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "R1");
}

TEST(LintR1, ScopedToSrcOutsideObsAndCli) {
  const std::string text = read_fixture("r1_nondeterminism.cpp");
  // Wall-clock timing is the obs layer's business; tests and tools may
  // read clocks and the environment freely.
  EXPECT_TRUE(lint_text("src/obs/fixture.cpp", text).empty());
  EXPECT_TRUE(lint_text("tests/fixture.cpp", text).empty());
  EXPECT_TRUE(lint_text("bench/fixture.cpp", text).empty());
}

// ------------------------------------------------------------------- R2 ----

TEST(LintR2, FiresOnUnorderedDeclarationsInCriticalDirs) {
  const std::string text = read_fixture("r2_unordered.cpp");
  for (const char* dir : {"src/simcore/", "src/net/", "src/core/",
                          "src/cluster/", "src/spark/"}) {
    const auto diags = lint_text(std::string(dir) + "fixture.cpp", text);
    EXPECT_TRUE(has_diag(diags, "R2", line_of(text, "by_id")));
    EXPECT_TRUE(has_diag(diags, "R2", line_of(text, "seen")));
    EXPECT_EQ(count_rule(diags, "R2"), 2u) << dir;
  }
}

TEST(LintR2, IncludesAreExemptAndOtherDirsAreOutOfScope) {
  const std::string text = read_fixture("r2_unordered.cpp");
  const auto diags = lint_text("src/simcore/fixture.cpp", text);
  EXPECT_FALSE(has_diag(diags, "R2", line_of(text, "#include <unordered_map>")));
  // ml/telemetry/etc. are not tagged determinism-critical.
  EXPECT_TRUE(lint_text("src/ml/fixture.cpp", text).empty());
}

TEST(LintR2, FiresOnIterationOverCompanionHeaderContainers) {
  const std::string text = read_fixture("r2_iteration.cpp");
  const std::string companion = read_fixture("r2_iteration_header.txt");
  const auto diags = lint_text("src/net/fixture.cpp", text, companion);
  EXPECT_TRUE(has_diag(diags, "R2", line_of(text, ": edges_")));
  EXPECT_TRUE(has_diag(diags, "R2", line_of(text, "weights_.begin()")));
  EXPECT_EQ(count_rule(diags, "R2"), 2u);
  // Without the companion, the declarations are invisible and nothing fires.
  EXPECT_TRUE(lint_text("src/net/fixture.cpp", text).empty());
}

// ------------------------------------------------------------------- R3 ----

TEST(LintR3, FiresOnUngatedHotPathInstrumentation) {
  const std::string text = read_fixture("r3_obs.cpp");
  const auto diags = lint_text("src/net/fixture.cpp", text);
  EXPECT_TRUE(has_diag(diags, "R3", line_of(text, "auto& flows")));
  EXPECT_TRUE(has_diag(diags, "R3", line_of(text, "flows.inc()")));
  EXPECT_TRUE(has_diag(diags, "R3", line_of(text, "void record_solver_metrics")));
  EXPECT_EQ(diags.size(), 3u);
}

TEST(LintR3, AcceptsTheCachedEnabledFlagPattern) {
  const std::string text = read_fixture("r3_gated_ok.cpp");
  EXPECT_TRUE(lint_text("src/net/fixture.cpp", text).empty());
  EXPECT_TRUE(lint_text("src/simcore/fixture.cpp", text).empty());
}

TEST(LintR3, HotPathScopeIsSimcoreAndNet) {
  const std::string text = read_fixture("r3_obs.cpp");
  // The scheduler/telemetry layers record per decision, not per event;
  // they are outside the hot-path rule.
  EXPECT_TRUE(lint_text("src/core/fixture.cpp", text).empty());
  EXPECT_TRUE(lint_text("src/telemetry/fixture.cpp", text).empty());
}

// ------------------------------------------------------------------- R4 ----

TEST(LintR4, FiresOnRawThreadsDetachAndUnannotatedSharing) {
  const std::string text = read_fixture("r4_threads.cpp");
  const auto diags = lint_text("tests/fixture.cpp", text);
  EXPECT_TRUE(has_diag(diags, "R4", line_of(text, "std::thread worker")));
  EXPECT_TRUE(has_diag(diags, "R4", line_of(text, "worker.detach()")));
  EXPECT_TRUE(has_diag(diags, "R4", line_of(text, "pool.parallel_for(16")));
  EXPECT_EQ(diags.size(), 3u);
  // hardware_concurrency() is a static query, and by-value captures share
  // nothing mutable: neither may fire.
  EXPECT_FALSE(
      has_diag(diags, "R4", line_of(text, "hardware_concurrency")));
  EXPECT_FALSE(has_diag(diags, "R4", line_of(text, "[base]")));
}

TEST(LintR4, ThreadPoolImplementationIsExempt) {
  const std::string text = read_fixture("r4_threads.cpp");
  EXPECT_TRUE(lint_text("src/util/thread_pool.cpp", text).empty());
}

// ------------------------------------------------------------------- R5 ----

TEST(LintR5, FiresOnMissingGuardAndUsingNamespace) {
  const std::string text = read_fixture("r5_header.hpp");
  const auto diags = lint_text("src/util/fixture.hpp", text);
  EXPECT_TRUE(has_diag(diags, "R5", 1));
  EXPECT_TRUE(has_diag(diags, "R5", line_of(text, "using namespace std")));
  EXPECT_EQ(diags.size(), 2u);
  // The same content as a .cpp is fine (R5 is header hygiene).
  EXPECT_TRUE(lint_text("src/util/fixture.cpp", text).empty());
}

TEST(LintR5, AcceptsPragmaOnceAfterLeadingComments) {
  const std::string good =
      "// A documented header.\n"
      "\n"
      "#pragma once\n"
      "namespace x {}\n";
  EXPECT_TRUE(lint_text("src/util/fixture.hpp", good).empty());
  const std::string guarded =
      "#ifndef LTS_FIXTURE_HPP\n"
      "#define LTS_FIXTURE_HPP\n"
      "namespace x {}\n"
      "#endif\n";
  EXPECT_TRUE(lint_text("src/util/fixture.hpp", guarded).empty());
}

// ------------------------------------------------------------------- R6 ----

TEST(LintR6, FiresOnPublicMutatorsWithoutAcknowledgment) {
  const std::string text = read_fixture("r6_epoch.cpp");
  const std::string companion = read_fixture("r6_epoch_header.txt");
  const auto diags = lint_text("src/telemetry/fixture.cpp", text, companion);
  // Public mutators of protocol state with no epoch bump / dirty mark.
  EXPECT_TRUE(has_diag(diags, "R6", line_of(text, "series_.erase")));
  EXPECT_TRUE(has_diag(diags, "R6", line_of(text, "report_delay_ = delay")));
  EXPECT_TRUE(has_diag(diags, "R6", line_of(text, "by_name_.clear()")));
  EXPECT_TRUE(has_diag(diags, "R6", line_of(text, "by_id_.erase")));
  EXPECT_EQ(count_rule(diags, "R6"), 4u);
  // The bare `epoch-ok` (no justification) is malformed and suppresses
  // nothing — both diagnostics land.
  EXPECT_TRUE(
      has_diag(diags, "waiver-syntax", line_of(text, "lts-lint: epoch-ok")));
  EXPECT_EQ(count_rule(diags, "waiver-syntax"), 1u);
  EXPECT_EQ(diags.size(), 5u);
  // ++epoch_, bump_epoch(), and mark_dirty() acknowledge; a private helper
  // (gc_locked in the header) defers the bump to its public caller.
  EXPECT_FALSE(has_diag(diags, "R6", line_of(text, "series_.push_back")));
  EXPECT_FALSE(has_diag(diags, "R6", line_of(text, "samples_dropped_ = 0")));
  EXPECT_FALSE(has_diag(diags, "R6", line_of(text, "by_id_.push_back")));
}

TEST(LintR6, WithoutTheClassIndexAccessFailsClosed) {
  // No companion: membership is unknown, so every protocol-member mutation
  // is treated as public — the four firing sites still fire, and gc_locked
  // (invisible `private:`) now fires too.
  const std::string text = read_fixture("r6_epoch.cpp");
  const auto diags = lint_text("src/telemetry/fixture.cpp", text);
  EXPECT_EQ(count_rule(diags, "R6"), 5u);
}

TEST(LintR6, DeletingTheTsdbEpochBumpIsCaught) {
  // The acceptance probe: strip the `++epoch_;` acknowledgment out of the
  // real Tsdb mutation path and the invariant must fire on the real code.
  std::string cpp = read_file(std::string(LTS_REPO_ROOT) + "/src/telemetry/tsdb.cpp");
  const std::string hpp =
      read_file(std::string(LTS_REPO_ROOT) + "/src/telemetry/tsdb.hpp");
  EXPECT_EQ(count_rule(lint_text("src/telemetry/tsdb.cpp", cpp, hpp), "R6"),
            0u);
  std::size_t removed = 0;
  for (std::size_t pos; (pos = cpp.find("++epoch_;")) != std::string::npos;
       ++removed) {
    cpp.erase(pos, std::string("++epoch_;").size());
  }
  ASSERT_GE(removed, 1u) << "tsdb.cpp no longer bumps with ++epoch_;";
  EXPECT_GE(count_rule(lint_text("src/telemetry/tsdb.cpp", cpp, hpp), "R6"),
            1u);
}

// ------------------------------------------------------------------- R7 ----

TEST(LintR7, FiresOnUnorderedAndParallelFpReductions) {
  const std::string text = read_fixture("r7_fp_order.cpp");
  const auto diags = lint_text("src/ml/fixture.cpp", text);
  EXPECT_TRUE(has_diag(diags, "R7", line_of(text, "std::reduce")));
  EXPECT_TRUE(has_diag(diags, "R7", line_of(text, "std::transform_reduce")));
  EXPECT_TRUE(
      has_diag(diags, "R7", line_of(text, "std::accumulate(weights_")));
  EXPECT_TRUE(has_diag(diags, "R7", line_of(text, "total += xs[i]")));
  EXPECT_EQ(count_rule(diags, "R7"), 4u);
  // The empty-justification fp-order-ok is malformed: diagnosed, and the
  // R7 underneath still fires. The two shared-guarded waivers keep R4 out.
  EXPECT_TRUE(
      has_diag(diags, "waiver-syntax", line_of(text, "fp-order-ok()")));
  EXPECT_EQ(count_rule(diags, "R4"), 0u);
  EXPECT_EQ(diags.size(), 5u);
  // A left fold over an ordered vector and an accumulator local to the
  // parallel extent are both deterministic.
  EXPECT_FALSE(
      has_diag(diags, "R7", line_of(text, "std::accumulate(xs.begin()")));
  EXPECT_FALSE(has_diag(diags, "R7", line_of(text, "acc += xs[i]")));
}

TEST(LintR7, ScopedToDeterminismCriticalDirs) {
  const std::string text = read_fixture("r7_fp_order.cpp");
  EXPECT_EQ(count_rule(lint_text("tools/fixture.cpp", text), "R7"), 0u);
  EXPECT_EQ(count_rule(lint_text("tests/fixture.cpp", text), "R7"), 0u);
}

// ------------------------------------------------------------------- R8 ----

TEST(LintR8, FiresInsideDeclaredHotFunctionsOnly) {
  const std::string text = read_fixture("r8_alloc.cpp");
  const auto diags = lint_text("src/core/fixture.cpp", text);
  EXPECT_TRUE(has_diag(diags, "R8", line_of(text, "new double[n]")));
  EXPECT_TRUE(has_diag(diags, "R8", line_of(text, "std::make_unique")));
  EXPECT_TRUE(has_diag(diags, "R8", line_of(text, "std::function<")));
  EXPECT_TRUE(
      has_diag(diags, "R8", line_of(text, "out.push_back(f(scratch[i]))")));
  EXPECT_TRUE(has_diag(diags, "R8", line_of(text, "acc.push_back(i)")));
  EXPECT_TRUE(has_diag(diags, "R8", line_of(text, "std::make_shared")));
  EXPECT_EQ(count_rule(diags, "R8"), 6u);
  // Unknown waiver token: diagnosed, does not suppress.
  EXPECT_TRUE(
      has_diag(diags, "waiver-syntax", line_of(text, "allocation-ok")));
  EXPECT_EQ(diags.size(), 7u);
  // reserve-then-push is the sanctioned pattern, and build_report's
  // identical body is not on the hot list.
  EXPECT_FALSE(has_diag(
      diags, "R8", line_of(text, "out.push_back(static_cast<double>(i))")));
  EXPECT_FALSE(has_diag(diags, "R8", line_of(text, "out.push_back(scratch[i])")));
}

// ------------------------------------------------------- cross-file tree ----

TEST(LintTree, CrossFileIndexResolvesCompanionsAndAccess) {
  // A miniature repo: headers supply the class index and the unordered
  // member declarations; the .cpp violations are only visible through the
  // shared project model.
  const std::string root = std::string(LTS_FIXTURE_DIR) + "/tree";
  const std::string store = read_file(root + "/src/telemetry/store.cpp");
  const std::string graph = read_file(root + "/src/net/graph.cpp");
  const auto diags = lint_tree(root);
  EXPECT_TRUE(std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == "R6" && d.path == "src/telemetry/store.cpp" &&
           d.line == line_of(store, "series_.erase");
  }));
  // The private helper's identical mutation is exempt.
  EXPECT_FALSE(
      std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
        return d.rule == "R6" && d.line == line_of(store, "series_.push_back");
      }));
  // Both iteration forms over the companion's unordered member fire, and
  // the header's own (waived) declaration stays quiet.
  EXPECT_TRUE(std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == "R2" && d.path == "src/net/graph.cpp" &&
           d.line == line_of(graph, ": edges_");
  }));
  EXPECT_TRUE(std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == "R2" && d.path == "src/net/graph.cpp" &&
           d.line == line_of(graph, "edges_.begin()");
  }));
  EXPECT_EQ(count_rule(diags, "waiver-unused"), 0u);
  EXPECT_EQ(diags.size(), 3u) << lts::lint::format_diagnostics(diags);
}

TEST(LintTree, ParallelLintIsByteIdenticalToSerial) {
  const std::string root = std::string(LTS_FIXTURE_DIR) + "/tree";
  Options serial;
  serial.jobs = 1;
  Options pooled;  // jobs = 0: the process-wide pool
  Options fixed;
  fixed.jobs = 3;
  const std::string want =
      lts::lint::format_diagnostics(lint_tree(root, serial));
  EXPECT_FALSE(want.empty());
  EXPECT_EQ(lts::lint::format_diagnostics(lint_tree(root, pooled)), want);
  EXPECT_EQ(lts::lint::format_diagnostics(lint_tree(root, fixed)), want);
  // And at repository scale (both clean, but the walk + merge must agree).
  EXPECT_EQ(
      lts::lint::format_diagnostics(lint_tree(LTS_REPO_ROOT, serial)),
      lts::lint::format_diagnostics(lint_tree(LTS_REPO_ROOT, pooled)));
}

// -------------------------------------------------------------- baseline ----

TEST(LintBaseline, DiffSuppressesExactlyTheAcceptedFindings) {
  const std::vector<Diagnostic> old = {
      {"src/a.cpp", 10, "R2", "unordered container declared"},
      {"src/a.cpp", 20, "R2", "unordered container declared"},
      {"src/b.cpp", 5, "R6", "mutation without epoch bump"}};
  const auto base = lts::lint::load_baseline(lts::lint::write_baseline(old));
  // Fingerprints ignore line numbers: shifted findings stay suppressed.
  std::vector<Diagnostic> shifted = old;
  for (auto& d : shifted) d.line += 7;
  EXPECT_TRUE(lts::lint::diff_baseline(shifted, base).empty());
  // Counts are multiset-aware: a third identical R2 overflows the two.
  shifted.push_back({"src/a.cpp", 30, "R2", "unordered container declared"});
  const auto fresh = lts::lint::diff_baseline(shifted, base);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].line, 30u);
  // Unknown fingerprints are always new; the checked-in empty baseline
  // (the rollout default) suppresses nothing.
  const std::vector<Diagnostic> other = {
      {"src/c.cpp", 1, "R8", "allocation in hot path"}};
  EXPECT_EQ(lts::lint::diff_baseline(other, base).size(), 1u);
  EXPECT_EQ(lts::lint::diff_baseline(old, lts::lint::load_baseline("[]")).size(),
            old.size());
  EXPECT_EQ(lts::lint::diff_baseline(old, lts::lint::load_baseline("")).size(),
            old.size());
}

// -------------------------------------------------------------- registry ----

TEST(LintRegistry, EveryRuleExplainsItselfAndTokensResolve) {
  const auto& rules = lts::lint::rule_registry();
  ASSERT_EQ(rules.size(), 8u);
  for (const auto& r : rules) {
    EXPECT_FALSE(r.info.id.empty());
    EXPECT_FALSE(r.info.summary.empty()) << r.info.id;
    EXPECT_FALSE(r.info.rationale.empty()) << r.info.id;
    EXPECT_FALSE(r.info.example.empty()) << r.info.id;
    EXPECT_EQ(lts::lint::find_rule(r.info.id), &r);
    EXPECT_EQ(lts::lint::find_rule(r.info.name), &r);
  }
  const auto& tokens = lts::lint::waiver_tokens();
  EXPECT_EQ(tokens.at("epoch-ok"), "R6");
  EXPECT_EQ(tokens.at("fp-order-ok"), "R7");
  EXPECT_EQ(tokens.at("alloc-ok"), "R8");
  EXPECT_EQ(tokens.at("shared-guarded"), "R4");
  EXPECT_EQ(tokens.at("thread-ok"), "R4");
  EXPECT_EQ(lts::lint::find_rule("R9"), nullptr);
}

// --------------------------------------------------------------- waivers ----

TEST(LintWaivers, JustifiedWaiversSilenceEveryWaivableRule) {
  const std::string text = read_fixture("waivers_ok.cpp");
  EXPECT_TRUE(lint_text("src/simcore/fixture.cpp", text).empty());
}

TEST(LintWaivers, MalformedWaiversAreDiagnosedAndDoNotSuppress) {
  const std::string text = read_fixture("waiver_bad.cpp");
  const auto diags = lint_text("src/simcore/fixture.cpp", text);
  EXPECT_TRUE(
      has_diag(diags, "waiver-syntax", line_of(text, "no-such-token")));
  EXPECT_TRUE(has_diag(diags, "waiver-syntax",
                       line_of(text, "missing justification")));
  EXPECT_TRUE(has_diag(diags, "waiver-syntax",
                       line_of(text, "empty justification")));
  EXPECT_TRUE(
      has_diag(diags, "waiver-syntax", line_of(text, "hopefully fine")));
  EXPECT_EQ(count_rule(diags, "waiver-syntax"), 4u);
  // A broken waiver must not silence the violation beneath it.
  EXPECT_EQ(count_rule(diags, "R2"), 3u);
  EXPECT_EQ(count_rule(diags, "R4"), 1u);
}

TEST(LintWaivers, SitePartitionedStrategySilencesR4) {
  // The hierarchical solver's per-site fan-out shares arrays whose elements
  // are owned by exactly one site; `site-partitioned` is the recognized
  // strategy for that discipline.
  const std::string good =
      "void f(ThreadPool& pool) {\n"
      "  // lts-lint: shared-guarded(site-partitioned: each worker writes only its site's slots)\n"
      "  pool.parallel_for(4, [&](std::size_t i) { (void)i; });\n"
      "}\n";
  EXPECT_TRUE(lint_text("src/net/fixture.cpp", good).empty());
  // A near-miss strategy name is rejected and does not suppress the R4.
  const std::string bad =
      "void f(ThreadPool& pool) {\n"
      "  // lts-lint: shared-guarded(sharded: sounds similar but is not a strategy)\n"
      "  pool.parallel_for(4, [&](std::size_t i) { (void)i; });\n"
      "}\n";
  const auto diags = lint_text("src/net/fixture.cpp", bad);
  EXPECT_EQ(count_rule(diags, "waiver-syntax"), 1u);
  EXPECT_EQ(count_rule(diags, "R4"), 1u);
}

TEST(LintWaivers, StaleWaiversAreFlagged) {
  const std::string text = read_fixture("waiver_unused.cpp");
  const auto diags = lint_text("src/simcore/fixture.cpp", text);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "waiver-unused");
  EXPECT_EQ(diags[0].line, line_of(text, "lingers"));
  Options lax;
  lax.check_unused_waivers = false;
  EXPECT_TRUE(lint_text("src/simcore/fixture.cpp", text, "", lax).empty());
}

// ---------------------------------------------------------------- output ----

TEST(LintOutput, FormatsGccStyleDiagnostics) {
  const std::vector<Diagnostic> diags = {
      {"src/net/flow.cpp", 42, "R2", "unordered container"}};
  EXPECT_EQ(lts::lint::format_diagnostics(diags),
            "src/net/flow.cpp:42: error[R2]: unordered container\n");
}

TEST(LintOutput, JsonArrayRoundTrips) {
  const std::vector<Diagnostic> diags = {
      {"src/net/flow.cpp", 42, "R2", "unordered container"},
      {"src/core/engine.cpp", 7, "R8", "allocation in hot path"}};
  const lts::Json doc = lts::Json::parse(lts::lint::to_json(diags));
  ASSERT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc.at(0).at("path").as_string(), "src/net/flow.cpp");
  EXPECT_EQ(doc.at(0).at("line").as_int(), 42);
  EXPECT_EQ(doc.at(1).at("rule").as_string(), "R8");
  EXPECT_EQ(doc.at(1).at("message").as_string(), "allocation in hot path");
}

TEST(LintOutput, SarifIsSchemaShapedAndRegistryDriven) {
  const std::vector<Diagnostic> diags = {
      {"src/net/flow.cpp", 42, "R6", "mutation without epoch bump"}};
  const lts::Json doc = lts::Json::parse(lts::lint::to_sarif(diags));
  EXPECT_EQ(doc.at("version").as_string(), "2.1.0");
  EXPECT_NE(doc.at("$schema").as_string().find("sarif-schema-2.1.0"),
            std::string::npos);
  const lts::Json& run = doc.at("runs").at(0);
  const lts::Json& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").as_string(), "lts_lint");
  // The rule table is generated from the registry: every rule id present.
  std::set<std::string> ids;
  for (const auto& r : driver.at("rules").as_array()) {
    ids.insert(r.at("id").as_string());
  }
  for (const auto& rule : lts::lint::rule_registry()) {
    EXPECT_TRUE(ids.count(rule.info.id)) << rule.info.id;
  }
  EXPECT_TRUE(ids.count("waiver-syntax"));
  const lts::Json& res = run.at("results").at(0);
  EXPECT_EQ(res.at("ruleId").as_string(), "R6");
  const lts::Json& loc = res.at("locations").at(0).at("physicalLocation");
  EXPECT_EQ(loc.at("artifactLocation").at("uri").as_string(),
            "src/net/flow.cpp");
  EXPECT_EQ(loc.at("region").at("startLine").as_int(), 42);
}

// ------------------------------------------------------------ the repo ----

TEST(LintRepo, WholeRepositoryIsClean) {
  // The integration guarantee: zero unwaived violations across src/,
  // tools/, bench/, and tests/. If this fails, either fix the violation or
  // add a justified waiver (and record it in CHANGES.md).
  const auto diags = lint_tree(LTS_REPO_ROOT);
  EXPECT_TRUE(diags.empty()) << lts::lint::format_diagnostics(diags);
}

}  // namespace
