// Tests for tools/lts_lint: every rule R1-R5 must fire on its seeded
// fixture with the right rule id, every waivable rule must be silenceable
// by a justified waiver, malformed and stale waivers must be diagnosed,
// and the repository itself must lint clean (the integration guarantee the
// CI lint job enforces).
//
// Fixtures live in tests/lint_fixtures/ and are never compiled; they are
// linted under *virtual* paths because rule scoping is path-driven (the
// same snippet is a violation in src/simcore/ and fine in tools/).
#include "lts_lint/linter.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using lts::lint::Diagnostic;
using lts::lint::lint_text;
using lts::lint::lint_tree;
using lts::lint::Options;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LTS_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// 1-based line number of the first line containing `marker`.
std::size_t line_of(const std::string& text, const std::string& marker) {
  std::istringstream in(text);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    ++n;
    if (line.find(marker) != std::string::npos) return n;
  }
  ADD_FAILURE() << "marker not found: " << marker;
  return 0;
}

bool has_diag(const std::vector<Diagnostic>& diags, const std::string& rule,
              std::size_t line) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == rule && d.line == line;
  });
}

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

// ------------------------------------------------------------------- R1 ----

TEST(LintR1, FiresOnEveryNondeterminismSource) {
  const std::string text = read_fixture("r1_nondeterminism.cpp");
  const auto diags = lint_text("src/simcore/fixture.cpp", text);
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "std::random_device rd")));
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "std::srand")));
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "int noise = rand()")));
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "steady_clock::now")));
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "system_clock::now")));
  EXPECT_TRUE(has_diag(diags, "R1", line_of(text, "std::getenv")));
  EXPECT_EQ(diags.size(), 6u);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "R1");
}

TEST(LintR1, ScopedToSrcOutsideObsAndCli) {
  const std::string text = read_fixture("r1_nondeterminism.cpp");
  // Wall-clock timing is the obs layer's business; tests and tools may
  // read clocks and the environment freely.
  EXPECT_TRUE(lint_text("src/obs/fixture.cpp", text).empty());
  EXPECT_TRUE(lint_text("tests/fixture.cpp", text).empty());
  EXPECT_TRUE(lint_text("bench/fixture.cpp", text).empty());
}

// ------------------------------------------------------------------- R2 ----

TEST(LintR2, FiresOnUnorderedDeclarationsInCriticalDirs) {
  const std::string text = read_fixture("r2_unordered.cpp");
  for (const char* dir : {"src/simcore/", "src/net/", "src/core/",
                          "src/cluster/", "src/spark/"}) {
    const auto diags = lint_text(std::string(dir) + "fixture.cpp", text);
    EXPECT_TRUE(has_diag(diags, "R2", line_of(text, "by_id")));
    EXPECT_TRUE(has_diag(diags, "R2", line_of(text, "seen")));
    EXPECT_EQ(count_rule(diags, "R2"), 2u) << dir;
  }
}

TEST(LintR2, IncludesAreExemptAndOtherDirsAreOutOfScope) {
  const std::string text = read_fixture("r2_unordered.cpp");
  const auto diags = lint_text("src/simcore/fixture.cpp", text);
  EXPECT_FALSE(has_diag(diags, "R2", line_of(text, "#include <unordered_map>")));
  // ml/telemetry/etc. are not tagged determinism-critical.
  EXPECT_TRUE(lint_text("src/ml/fixture.cpp", text).empty());
}

TEST(LintR2, FiresOnIterationOverCompanionHeaderContainers) {
  const std::string text = read_fixture("r2_iteration.cpp");
  const std::string companion = read_fixture("r2_iteration_header.txt");
  const auto diags = lint_text("src/net/fixture.cpp", text, companion);
  EXPECT_TRUE(has_diag(diags, "R2", line_of(text, ": edges_")));
  EXPECT_TRUE(has_diag(diags, "R2", line_of(text, "weights_.begin()")));
  EXPECT_EQ(count_rule(diags, "R2"), 2u);
  // Without the companion, the declarations are invisible and nothing fires.
  EXPECT_TRUE(lint_text("src/net/fixture.cpp", text).empty());
}

// ------------------------------------------------------------------- R3 ----

TEST(LintR3, FiresOnUngatedHotPathInstrumentation) {
  const std::string text = read_fixture("r3_obs.cpp");
  const auto diags = lint_text("src/net/fixture.cpp", text);
  EXPECT_TRUE(has_diag(diags, "R3", line_of(text, "auto& flows")));
  EXPECT_TRUE(has_diag(diags, "R3", line_of(text, "flows.inc()")));
  EXPECT_TRUE(has_diag(diags, "R3", line_of(text, "void record_solver_metrics")));
  EXPECT_EQ(diags.size(), 3u);
}

TEST(LintR3, AcceptsTheCachedEnabledFlagPattern) {
  const std::string text = read_fixture("r3_gated_ok.cpp");
  EXPECT_TRUE(lint_text("src/net/fixture.cpp", text).empty());
  EXPECT_TRUE(lint_text("src/simcore/fixture.cpp", text).empty());
}

TEST(LintR3, HotPathScopeIsSimcoreAndNet) {
  const std::string text = read_fixture("r3_obs.cpp");
  // The scheduler/telemetry layers record per decision, not per event;
  // they are outside the hot-path rule.
  EXPECT_TRUE(lint_text("src/core/fixture.cpp", text).empty());
  EXPECT_TRUE(lint_text("src/telemetry/fixture.cpp", text).empty());
}

// ------------------------------------------------------------------- R4 ----

TEST(LintR4, FiresOnRawThreadsDetachAndUnannotatedSharing) {
  const std::string text = read_fixture("r4_threads.cpp");
  const auto diags = lint_text("tests/fixture.cpp", text);
  EXPECT_TRUE(has_diag(diags, "R4", line_of(text, "std::thread worker")));
  EXPECT_TRUE(has_diag(diags, "R4", line_of(text, "worker.detach()")));
  EXPECT_TRUE(has_diag(diags, "R4", line_of(text, "pool.parallel_for(16")));
  EXPECT_EQ(diags.size(), 3u);
  // hardware_concurrency() is a static query, and by-value captures share
  // nothing mutable: neither may fire.
  EXPECT_FALSE(
      has_diag(diags, "R4", line_of(text, "hardware_concurrency")));
  EXPECT_FALSE(has_diag(diags, "R4", line_of(text, "[base]")));
}

TEST(LintR4, ThreadPoolImplementationIsExempt) {
  const std::string text = read_fixture("r4_threads.cpp");
  EXPECT_TRUE(lint_text("src/util/thread_pool.cpp", text).empty());
}

// ------------------------------------------------------------------- R5 ----

TEST(LintR5, FiresOnMissingGuardAndUsingNamespace) {
  const std::string text = read_fixture("r5_header.hpp");
  const auto diags = lint_text("src/util/fixture.hpp", text);
  EXPECT_TRUE(has_diag(diags, "R5", 1));
  EXPECT_TRUE(has_diag(diags, "R5", line_of(text, "using namespace std")));
  EXPECT_EQ(diags.size(), 2u);
  // The same content as a .cpp is fine (R5 is header hygiene).
  EXPECT_TRUE(lint_text("src/util/fixture.cpp", text).empty());
}

TEST(LintR5, AcceptsPragmaOnceAfterLeadingComments) {
  const std::string good =
      "// A documented header.\n"
      "\n"
      "#pragma once\n"
      "namespace x {}\n";
  EXPECT_TRUE(lint_text("src/util/fixture.hpp", good).empty());
  const std::string guarded =
      "#ifndef LTS_FIXTURE_HPP\n"
      "#define LTS_FIXTURE_HPP\n"
      "namespace x {}\n"
      "#endif\n";
  EXPECT_TRUE(lint_text("src/util/fixture.hpp", guarded).empty());
}

// --------------------------------------------------------------- waivers ----

TEST(LintWaivers, JustifiedWaiversSilenceEveryWaivableRule) {
  const std::string text = read_fixture("waivers_ok.cpp");
  EXPECT_TRUE(lint_text("src/simcore/fixture.cpp", text).empty());
}

TEST(LintWaivers, MalformedWaiversAreDiagnosedAndDoNotSuppress) {
  const std::string text = read_fixture("waiver_bad.cpp");
  const auto diags = lint_text("src/simcore/fixture.cpp", text);
  EXPECT_TRUE(
      has_diag(diags, "waiver-syntax", line_of(text, "no-such-token")));
  EXPECT_TRUE(has_diag(diags, "waiver-syntax",
                       line_of(text, "missing justification")));
  EXPECT_TRUE(has_diag(diags, "waiver-syntax",
                       line_of(text, "empty justification")));
  EXPECT_TRUE(
      has_diag(diags, "waiver-syntax", line_of(text, "hopefully fine")));
  EXPECT_EQ(count_rule(diags, "waiver-syntax"), 4u);
  // A broken waiver must not silence the violation beneath it.
  EXPECT_EQ(count_rule(diags, "R2"), 3u);
  EXPECT_EQ(count_rule(diags, "R4"), 1u);
}

TEST(LintWaivers, SitePartitionedStrategySilencesR4) {
  // The hierarchical solver's per-site fan-out shares arrays whose elements
  // are owned by exactly one site; `site-partitioned` is the recognized
  // strategy for that discipline.
  const std::string good =
      "void f(ThreadPool& pool) {\n"
      "  // lts-lint: shared-guarded(site-partitioned: each worker writes only its site's slots)\n"
      "  pool.parallel_for(4, [&](std::size_t i) { (void)i; });\n"
      "}\n";
  EXPECT_TRUE(lint_text("src/net/fixture.cpp", good).empty());
  // A near-miss strategy name is rejected and does not suppress the R4.
  const std::string bad =
      "void f(ThreadPool& pool) {\n"
      "  // lts-lint: shared-guarded(sharded: sounds similar but is not a strategy)\n"
      "  pool.parallel_for(4, [&](std::size_t i) { (void)i; });\n"
      "}\n";
  const auto diags = lint_text("src/net/fixture.cpp", bad);
  EXPECT_EQ(count_rule(diags, "waiver-syntax"), 1u);
  EXPECT_EQ(count_rule(diags, "R4"), 1u);
}

TEST(LintWaivers, StaleWaiversAreFlagged) {
  const std::string text = read_fixture("waiver_unused.cpp");
  const auto diags = lint_text("src/simcore/fixture.cpp", text);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "waiver-unused");
  EXPECT_EQ(diags[0].line, line_of(text, "lingers"));
  Options lax;
  lax.check_unused_waivers = false;
  EXPECT_TRUE(lint_text("src/simcore/fixture.cpp", text, "", lax).empty());
}

// ---------------------------------------------------------------- output ----

TEST(LintOutput, FormatsGccStyleDiagnostics) {
  const std::vector<Diagnostic> diags = {
      {"src/net/flow.cpp", 42, "R2", "unordered container"}};
  EXPECT_EQ(lts::lint::format_diagnostics(diags),
            "src/net/flow.cpp:42: error[R2]: unordered container\n");
}

// ------------------------------------------------------------ the repo ----

TEST(LintRepo, WholeRepositoryIsClean) {
  // The integration guarantee: zero unwaived violations across src/,
  // tools/, bench/, and tests/. If this fails, either fix the violation or
  // add a justified waiver (and record it in CHANGES.md).
  const auto diags = lint_tree(LTS_REPO_ROOT);
  EXPECT_TRUE(diags.empty()) << lts::lint::format_diagnostics(diags);
}

}  // namespace
