// Unit tests for the cluster substrate: CPU processor sharing, node memory
// accounting, the multi-site cluster facade, and the background load
// generator.
#include <gtest/gtest.h>

#include "cluster/background.hpp"
#include "cluster/cluster.hpp"
#include "cluster/cpu.hpp"
#include "cluster/node.hpp"
#include "simcore/engine.hpp"

namespace lts::cluster {
namespace {

// ---------------------------------------------------------------- cpu ----

TEST(CpuPool, UncontendedTaskRunsAtDemand) {
  sim::Engine engine;
  CpuPool pool(engine, 4.0);
  double done_at = -1.0;
  pool.run(2.0, 4.0, [&] { done_at = engine.now(); });  // 4 core-s at 2 cores
  engine.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(CpuPool, ContentionStretchesProportionally) {
  sim::Engine engine;
  CpuPool pool(engine, 2.0);
  // Two tasks, each demanding 2 cores on a 2-core node: each runs at 1.
  double a = -1, b = -1;
  pool.run(2.0, 2.0, [&] { a = engine.now(); });
  pool.run(2.0, 2.0, [&] { b = engine.now(); });
  engine.run();
  EXPECT_NEAR(a, 2.0, 1e-9);
  EXPECT_NEAR(b, 2.0, 1e-9);
}

TEST(CpuPool, EarlyFinisherSpeedsUpRemainder) {
  sim::Engine engine;
  CpuPool pool(engine, 1.0);
  double small = -1, big = -1;
  pool.run(1.0, 0.5, [&] { small = engine.now(); });
  pool.run(1.0, 1.5, [&] { big = engine.now(); });
  engine.run();
  // Both at 0.5 cores until t=1 (small done: 0.5 work). Big then has 1.0
  // work left at full speed: done at t=2.
  EXPECT_NEAR(small, 1.0, 1e-9);
  EXPECT_NEAR(big, 2.0, 1e-9);
}

TEST(CpuPool, PersistentLoadSlowsTasks) {
  sim::Engine engine;
  CpuPool pool(engine, 2.0);
  pool.add_persistent(1.0);
  double done = -1;
  pool.run(2.0, 2.0, [&] { done = engine.now(); });
  // demand 3 on 2 cores: task rate = 2 * (2/3) = 4/3 -> 1.5s.
  engine.run_until(10.0);
  EXPECT_NEAR(done, 1.5, 1e-9);
}

TEST(CpuPool, CancelPersistentRestoresSpeed) {
  sim::Engine engine;
  CpuPool pool(engine, 1.0);
  const CpuTaskId bg = pool.add_persistent(1.0);
  double done = -1;
  pool.run(1.0, 1.0, [&] { done = engine.now(); });
  engine.schedule_at(1.0, [&] { pool.cancel(bg); });
  engine.run_until(10.0);
  // 0.5 work done in the first second (half speed), rest at full speed.
  EXPECT_NEAR(done, 1.5, 1e-9);
}

TEST(CpuPool, TotalDemandAndUtilization) {
  sim::Engine engine;
  CpuPool pool(engine, 4.0);
  EXPECT_EQ(pool.total_demand(), 0.0);
  pool.add_persistent(1.0);
  pool.add_persistent(2.0);
  EXPECT_DOUBLE_EQ(pool.total_demand(), 3.0);
  EXPECT_DOUBLE_EQ(pool.utilization(), 0.75);
  pool.add_persistent(3.0);
  EXPECT_DOUBLE_EQ(pool.utilization(), 1.0);  // clamped
}

TEST(CpuPool, CallbackMayScheduleMoreWork) {
  sim::Engine engine;
  CpuPool pool(engine, 1.0);
  double second_done = -1;
  pool.run(1.0, 1.0, [&] {
    pool.run(1.0, 1.0, [&] { second_done = engine.now(); });
  });
  engine.run();
  EXPECT_NEAR(second_done, 2.0, 1e-9);
}

TEST(CpuPool, InvalidArgsThrow) {
  sim::Engine engine;
  CpuPool pool(engine, 1.0);
  EXPECT_THROW(pool.run(0.0, 1.0, nullptr), Error);
  EXPECT_THROW(pool.run(1.0, 0.0, nullptr), Error);
  EXPECT_THROW(pool.add_persistent(-1.0), Error);
  EXPECT_THROW(CpuPool(engine, 0.0), Error);
}

// --------------------------------------------------------------- node ----

TEST(Node, MemoryAccounting) {
  sim::Engine engine;
  Node node(engine, "n", "site", 0, 4.0, 1000.0);
  EXPECT_DOUBLE_EQ(node.memory_available(), 1000.0);
  node.allocate_memory(300.0);
  EXPECT_DOUBLE_EQ(node.memory_used(), 300.0);
  EXPECT_DOUBLE_EQ(node.memory_pressure(), 0.3);
  node.release_memory(100.0);
  EXPECT_DOUBLE_EQ(node.memory_used(), 200.0);
}

TEST(Node, OverCommitAllowedAndVisible) {
  sim::Engine engine;
  Node node(engine, "n", "site", 0, 4.0, 1000.0);
  node.allocate_memory(1500.0);
  EXPECT_GT(node.memory_pressure(), 1.0);
  EXPECT_LT(node.memory_available(), 0.0);
}

TEST(Node, ReleaseClampsAtZero) {
  sim::Engine engine;
  Node node(engine, "n", "site", 0, 4.0, 1000.0);
  node.allocate_memory(100.0);
  node.release_memory(500.0);
  EXPECT_DOUBLE_EQ(node.memory_used(), 0.0);
}

// ------------------------------------------------------------ cluster ----

TEST(Cluster, PaperSpecBuildsSixNodesThreeSites) {
  sim::Engine engine;
  Cluster cluster(engine, paper_cluster_spec());
  EXPECT_EQ(cluster.num_nodes(), 6u);
  EXPECT_EQ(cluster.site_names().size(), 3u);
  EXPECT_EQ(cluster.node(0).site(), "ucsd");
  EXPECT_EQ(cluster.node(2).site(), "fiu");
  EXPECT_EQ(cluster.node(4).site(), "sri");
  EXPECT_DOUBLE_EQ(cluster.node(0).cores(), 6.0);
}

TEST(Cluster, NodeLookupByName) {
  sim::Engine engine;
  Cluster cluster(engine, paper_cluster_spec());
  EXPECT_EQ(cluster.node_index("node-3"), 2u);
  EXPECT_EQ(cluster.node_by_name("node-6").site(), "sri");
  EXPECT_THROW(cluster.node_index("node-7"), Error);
}

TEST(Cluster, SiteRttsMatchSpec) {
  sim::Engine engine;
  const auto spec = paper_cluster_spec();
  Cluster cluster(engine, spec);
  for (const auto& wan : spec.wan_links) {
    EXPECT_NEAR(cluster.site_rtt(wan.site_a, wan.site_b), wan.rtt,
                wan.rtt * 0.05)
        << wan.site_a << "<->" << wan.site_b;
  }
}

TEST(Cluster, IntraSiteRttMuchSmallerThanInterSite) {
  sim::Engine engine;
  Cluster cluster(engine, paper_cluster_spec());
  const auto& flows = cluster.flows();
  const SimTime intra = flows.base_rtt(cluster.node(0).vertex(),
                                       cluster.node(1).vertex());
  const SimTime inter = flows.base_rtt(cluster.node(0).vertex(),
                                       cluster.node(2).vertex());
  EXPECT_LT(intra, inter / 10.0);
}

TEST(Cluster, PerNodeExtraDelayApplied) {
  sim::Engine engine;
  auto spec = paper_cluster_spec();
  spec.node_access_extra_delay = {0.0, 0.010, 0.0, 0.0, 0.0, 0.0};
  Cluster cluster(engine, spec);
  const auto& flows = cluster.flows();
  // node-2 has +10ms one-way on its access link; RTT to node-1 gains 20ms.
  const SimTime rtt12 = flows.base_rtt(cluster.node(0).vertex(),
                                       cluster.node(1).vertex());
  EXPECT_NEAR(rtt12, 0.020, 0.002);
}

// --------------------------------------------------------- background ----

TEST(BackgroundLoad, GeneratesTrafficAndCpuAndMemory) {
  sim::Engine engine;
  Cluster cluster(engine, paper_cluster_spec());
  BackgroundLoadOptions options;
  options.parallel_fetches = 2;
  BackgroundLoad load(cluster, 0, 2, options, Rng(5));
  load.start();
  engine.run_until(30.0);
  EXPECT_GT(load.fetches_completed(), 5u);
  // Client receives, server transmits.
  EXPECT_GT(cluster.flows().host_rx_bytes(cluster.node(0).vertex()), 1e7);
  EXPECT_GT(cluster.flows().host_tx_bytes(cluster.node(2).vertex()), 1e7);
  EXPECT_GT(cluster.node(0).memory_used(), 0.0);
  load.stop();
  EXPECT_DOUBLE_EQ(cluster.node(0).memory_used(), 0.0);
}

TEST(BackgroundLoad, StopQuiescesTraffic) {
  sim::Engine engine;
  Cluster cluster(engine, paper_cluster_spec());
  BackgroundLoad load(cluster, 1, 3, {}, Rng(5));
  load.start();
  engine.run_until(10.0);
  load.stop();
  const Bytes rx_at_stop = cluster.flows().host_rx_bytes(
      cluster.node(1).vertex());
  engine.run_until(30.0);
  EXPECT_DOUBLE_EQ(cluster.flows().host_rx_bytes(cluster.node(1).vertex()),
                   rx_at_stop);
  EXPECT_DOUBLE_EQ(cluster.node(1).cpu().total_demand(), 0.0);
}

TEST(BackgroundLoad, FetchesScaleWithParallelism) {
  sim::Engine engine1, engine2;
  Cluster c1(engine1, paper_cluster_spec());
  Cluster c2(engine2, paper_cluster_spec());
  BackgroundLoadOptions one, four;
  one.parallel_fetches = 1;
  four.parallel_fetches = 4;
  BackgroundLoad l1(c1, 0, 2, one, Rng(5));
  BackgroundLoad l4(c2, 0, 2, four, Rng(5));
  l1.start();
  l4.start();
  engine1.run_until(30.0);
  engine2.run_until(30.0);
  EXPECT_GT(l4.fetches_completed(), 2 * l1.fetches_completed());
}

TEST(BackgroundLoad, SameNodePairRejected) {
  sim::Engine engine;
  Cluster cluster(engine, paper_cluster_spec());
  EXPECT_THROW(BackgroundLoad(cluster, 1, 1, {}, Rng(1)), Error);
}

TEST(BackgroundLoad, DeterministicAcrossRebuilds) {
  auto run_once = [] {
    sim::Engine engine;
    Cluster cluster(engine, paper_cluster_spec());
    BackgroundLoadOptions options;
    options.parallel_fetches = 2;
    BackgroundLoad load(cluster, 0, 3, options, Rng(77));
    load.start();
    engine.run_until(25.0);
    return std::make_pair(load.fetches_completed(),
                          cluster.flows().host_rx_bytes(
                              cluster.node(0).vertex()));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace lts::cluster
