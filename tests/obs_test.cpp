// Unit tests for the lts::obs observability layer: metrics registry
// (counters, gauges, histograms, Prometheus/JSON export, enable gating) and
// per-decision trace spans, plus the end-to-end guarantees the rest of the
// simulator relies on (instrumentation never changes simulation results).
#include <gtest/gtest.h>

#include <span>

#include "core/scheduler.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "exp/stream.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lts::obs {
namespace {

spark::JobConfig small_job() {
  spark::JobConfig config;
  config.app = spark::AppType::kSort;
  config.input_records = 1000000;
  config.record_bytes = 200.0;
  config.executors = 2;
  config.validate();
  return config;
}

/// Fitted model predicting a constant: ranking order is the deterministic
/// name tie-break, which keeps the trace test independent of training.
class ConstantModel : public ml::Regressor {
 public:
  void fit(const ml::Dataset&) override {}
  double predict_row(std::span<const double>) const override { return 1.0; }
  bool is_fitted() const override { return true; }
  std::string name() const override { return "constant"; }
  Json to_json() const override { return Json::object(); }
  void from_json(const Json&) override {}
};

// ------------------------------------------------------------ registry ----

TEST(MetricsRegistry, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  auto& c = registry.counter("events_total", {}, "help");
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same identity -> same instrument; different labels -> a sibling child.
  EXPECT_EQ(&registry.counter("events_total"), &c);
  auto& c2 = registry.counter("events_total", {{"kind", "x"}});
  EXPECT_NE(&c2, &c);
  EXPECT_DOUBLE_EQ(c2.value(), 0.0);

  auto& g = registry.gauge("depth");
  g.set(7.0);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  EXPECT_EQ(registry.num_instruments(), 3u);
}

TEST(MetricsRegistry, DisabledInstrumentsAreNoOps) {
  MetricsRegistry registry;  // disabled by default
  EXPECT_FALSE(registry.enabled());
  auto& c = registry.counter("c");
  auto& g = registry.gauge("g");
  auto& h = registry.histogram("h", {1.0, 2.0});
  c.inc(100.0);
  g.set(100.0);
  h.observe(1.5);
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);

  // Re-enabling makes the same references live without re-registration.
  registry.set_enabled(true);
  c.inc();
  EXPECT_DOUBLE_EQ(c.value(), 1.0);
}

TEST(MetricsRegistry, KindConflictThrows) {
  MetricsRegistry registry;
  registry.counter("m");
  EXPECT_THROW(registry.gauge("m"), Error);
  EXPECT_THROW(registry.histogram("m", {1.0}), Error);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  auto& c = registry.counter("c");
  auto& h = registry.histogram("h", {1.0});
  c.inc(5.0);
  h.observe(0.5);
  registry.reset_values();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(&registry.counter("c"), &c);  // same instrument survives
  c.inc();
  EXPECT_DOUBLE_EQ(c.value(), 1.0);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  auto& h = registry.histogram("latency", {1.0, 2.0, 4.0});
  // Prometheus `le` semantics: a value equal to a boundary lands in that
  // boundary's bucket; anything above the last boundary goes to +Inf.
  h.observe(0.5);   // le=1
  h.observe(1.0);   // le=1 (inclusive)
  h.observe(1.5);   // le=2
  h.observe(4.0);   // le=4 (inclusive)
  h.observe(100.0);  // +Inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);

  // Cumulative rendering in the text format, ending in +Inf == count.
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("latency_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_bucket{le=\"2\"} 3"), std::string::npos);
  EXPECT_NE(text.find("latency_bucket{le=\"4\"} 4"), std::string::npos);
  EXPECT_NE(text.find("latency_bucket{le=\"+Inf\"} 5"), std::string::npos);
  EXPECT_NE(text.find("latency_count 5"), std::string::npos);
}

TEST(Histogram, BoundariesMustBeSortedAndFixed) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("bad", {2.0, 1.0}), Error);
  auto& h = registry.histogram("h", {1.0, 2.0});
  // Re-registration with different boundaries is a bug, not a new family.
  EXPECT_THROW(registry.histogram("h", {5.0}), Error);
  EXPECT_EQ(&registry.histogram("h", {1.0, 2.0}), &h);
}

TEST(PrometheusText, EscapesLabelValuesAndHelp) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry
      .counter("weird_total", {{"path", "a\\b\"c\nd"}},
               "help with \\ and\nnewline")
      .inc();
  const std::string text = registry.prometheus_text();
  // Label value: backslash, quote, and newline all escaped.
  EXPECT_NE(text.find("weird_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            std::string::npos);
  // HELP line: backslash and newline escaped (quotes stay literal).
  EXPECT_NE(text.find("# HELP weird_total help with \\\\ and\\nnewline"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE weird_total counter"), std::string::npos);
}

TEST(PrometheusText, FamiliesSortedAndTyped) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.gauge("zz_depth").set(3.0);
  registry.counter("aa_total").inc();
  const std::string text = registry.prometheus_text();
  const auto aa = text.find("# TYPE aa_total counter");
  const auto zz = text.find("# TYPE zz_depth gauge");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, zz);
}

TEST(MetricsRegistry, JsonExportCarriesValuesAndTypes) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.counter("c_total", {{"node", "n1"}}).inc(2.0);
  registry.histogram("h", {1.0}).observe(0.5);
  const Json j = registry.to_json();
  const Json& c = j.at("c_total");
  EXPECT_EQ(c.at("type").as_string(), "counter");
  EXPECT_DOUBLE_EQ(c.at("series").at(0u).at("value").as_double(), 2.0);
  EXPECT_EQ(c.at("series").at(0u).at("labels").at("node").as_string(), "n1");
  EXPECT_EQ(j.at("h").at("type").as_string(), "histogram");
  EXPECT_DOUBLE_EQ(j.at("h").at("series").at(0u).at("count").as_double(),
                   1.0);
  // Round-trips through the text parser's view of the world.
  const Json reparsed = Json::parse(j.dump());
  EXPECT_EQ(reparsed.at("c_total").at("type").as_string(), "counter");
}

// -------------------------------------------------------------- tracer ----

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.begin("span", 1.0);
  tracer.phase("p", 1.0);
  tracer.end(2.0);
  EXPECT_EQ(tracer.num_spans(), 0u);
  {
    ScopedSpan span(tracer, "scoped", 1.0);
    span.phase("p", 1.5);
  }
  EXPECT_EQ(tracer.num_spans(), 0u);
}

TEST(Tracer, SpanRoundTripThroughScheduler) {
  // A schedule() call with the tracer enabled must produce exactly one
  // span walking the pipeline phases in order — and the decision itself
  // must be identical to an untraced call (observation only).
  exp::SimEnv env(11);
  env.warmup();
  core::LtsScheduler scheduler(
      core::TelemetryFetcher(env.tsdb(), env.node_names(), {}, {}),
      std::make_shared<ConstantModel>(), core::FeatureSet::kTable1,
      /*risk_aversion=*/0.0, {});
  const auto job = small_job();
  const SimTime now = env.engine().now();

  const auto untraced = scheduler.schedule(job, now);

  auto& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  const auto traced = scheduler.schedule(job, now);
  tracer.set_enabled(false);

  ASSERT_EQ(tracer.num_spans(), 1u);
  const auto& span = tracer.span(0);
  EXPECT_EQ(span.name, "schedule");
  EXPECT_DOUBLE_EQ(span.sim_begin, now);
  ASSERT_EQ(span.phases.size(), 4u);
  EXPECT_EQ(span.phases[0].name, "fetch");
  EXPECT_EQ(span.phases[1].name, "features");
  EXPECT_EQ(span.phases[2].name, "predict");
  EXPECT_EQ(span.phases[3].name, "rank");
  for (const auto& phase : span.phases) EXPECT_GE(phase.wall_ms, 0.0);

  // JSON round-trip preserves the structure.
  const Json j = Json::parse(tracer.to_json().dump());
  EXPECT_EQ(j.at(0u).at("name").as_string(), "schedule");
  EXPECT_EQ(j.at(0u).at("phases").at(1u).at("name").as_string(), "features");

  // Tracing changed nothing about the decision.
  ASSERT_EQ(traced.ranking.size(), untraced.ranking.size());
  for (std::size_t i = 0; i < traced.ranking.size(); ++i) {
    EXPECT_EQ(traced.ranking[i].node, untraced.ranking[i].node);
    EXPECT_DOUBLE_EQ(traced.ranking[i].predicted_duration,
                     untraced.ranking[i].predicted_duration);
  }
  tracer.clear();
}

TEST(Tracer, ScopedSpanJoinsOpenCallerSpan) {
  // The job-stream runner's pattern: an outer "decision" span is open, the
  // scheduler's reuse_open ScopedSpan contributes phases to it instead of
  // nesting, and the caller appends "bind" afterwards.
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer(tracer, "decision", 10.0);
    {
      ScopedSpan inner(tracer, "schedule", 10.0, /*reuse_open=*/true);
      inner.phase("fetch", 10.0);
      inner.phase("rank", 10.0);
    }
    EXPECT_EQ(tracer.num_spans(), 0u);  // inner joined; nothing closed yet
    outer.phase("bind", 12.0);
  }
  ASSERT_EQ(tracer.num_spans(), 1u);
  const auto& span = tracer.span(0);
  EXPECT_EQ(span.name, "decision");
  ASSERT_EQ(span.phases.size(), 3u);
  EXPECT_EQ(span.phases[0].name, "fetch");
  EXPECT_EQ(span.phases[1].name, "rank");
  EXPECT_EQ(span.phases[2].name, "bind");

  // Without an open caller span the same construction owns its own span.
  {
    ScopedSpan solo(tracer, "schedule", 20.0, /*reuse_open=*/true);
    solo.phase("rank", 20.0);
  }
  ASSERT_EQ(tracer.num_spans(), 2u);
  EXPECT_EQ(tracer.span(1).name, "schedule");
}

// ----------------------------------------------- observation-only proof ----

TEST(Instrumentation, EnabledRegistryDoesNotChangeStreamResults) {
  // The global registry gates every built-in instrument; flipping it on
  // must not perturb a simulation in any way. Run the same small job
  // stream twice and demand bit-identical results.
  exp::StreamOptions options;
  options.num_jobs = 4;
  options.seed = 5;
  options.fallback.enabled = true;  // model policy via fallback: no training

  auto& registry = MetricsRegistry::global();
  auto& tracer = Tracer::global();
  ASSERT_FALSE(registry.enabled());
  const auto quiet = exp::run_job_stream(exp::StreamPolicy::kModel, nullptr,
                                         exp::paper_scenario_matrix(),
                                         options);

  registry.set_enabled(true);
  tracer.set_enabled(true);
  const auto observed = exp::run_job_stream(exp::StreamPolicy::kModel,
                                            nullptr,
                                            exp::paper_scenario_matrix(),
                                            options);
  registry.set_enabled(false);
  tracer.set_enabled(false);

  EXPECT_DOUBLE_EQ(observed.makespan, quiet.makespan);
  ASSERT_EQ(observed.jobs.size(), quiet.jobs.size());
  for (std::size_t i = 0; i < quiet.jobs.size(); ++i) {
    EXPECT_EQ(observed.jobs[i].driver_node, quiet.jobs[i].driver_node);
    EXPECT_DOUBLE_EQ(observed.jobs[i].submitted, quiet.jobs[i].submitted);
    EXPECT_DOUBLE_EQ(observed.jobs[i].duration, quiet.jobs[i].duration);
  }
  // And the observed run actually recorded something: decisions counted,
  // one "decision" span per placement attempt.
  EXPECT_GE(obs::counter("lts_scheduler_decisions_total").value(), 4.0);
  EXPECT_GE(tracer.num_spans(), 4u);
  tracer.clear();
}

}  // namespace
}  // namespace lts::obs
