// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "simcore/engine.hpp"
#include "util/common.hpp"

namespace lts::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.num_pending(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 3.0);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(1.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ScheduleInUsesRelativeTime) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(5.0, [&] {
    engine.schedule_in(2.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(engine.pending(id));
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.pending(id));
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelTwiceIsSafe) {
  Engine engine;
  const EventId id = engine.schedule_at(1.0, [] {});
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));
  engine.run();
}

TEST(Engine, CancelFromWithinEvent) {
  Engine engine;
  bool second_fired = false;
  const EventId second = engine.schedule_at(2.0, [&] { second_fired = true; });
  engine.schedule_at(1.0, [&] { engine.cancel(second); });
  engine.run();
  EXPECT_FALSE(second_fired);
}

TEST(Engine, RunUntilAdvancesClockExactly) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(5.0, [&] { ++fired; });
  engine.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  engine.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, RunUntilFiresBoundaryEvents) {
  Engine engine;
  bool fired = false;
  engine.schedule_at(3.0, [&] { fired = true; });
  engine.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, PastSchedulingThrows) {
  Engine engine;
  engine.schedule_at(2.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), Error);
  EXPECT_THROW(engine.schedule_in(-0.5, [] {}), Error);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) engine.schedule_in(1.0, recurse);
  };
  engine.schedule_in(1.0, recurse);
  engine.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, ProcessedCountTracksFiredEvents) {
  Engine engine;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(static_cast<SimTime>(i), [] {});
  }
  const EventId cancelled = engine.schedule_at(9.0, [] {});
  engine.cancel(cancelled);
  engine.run();
  EXPECT_EQ(engine.num_processed(), 5u);
}

TEST(PeriodicTask, FiresAtInterval) {
  Engine engine;
  std::vector<SimTime> fire_times;
  PeriodicTask task(engine, 2.0, 0.5,
                    [&] { fire_times.push_back(engine.now()); });
  engine.run_until(9.0);
  ASSERT_EQ(fire_times.size(), 5u);
  EXPECT_DOUBLE_EQ(fire_times[0], 0.5);
  EXPECT_DOUBLE_EQ(fire_times[4], 8.5);
}

TEST(PeriodicTask, StopHaltsFiring) {
  Engine engine;
  int count = 0;
  PeriodicTask task(engine, 1.0, 0.0, [&] { ++count; });
  engine.run_until(3.5);
  task.stop();
  engine.run_until(10.0);
  EXPECT_EQ(count, 4);  // t = 0, 1, 2, 3
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, CanStopItselfFromCallback) {
  Engine engine;
  int count = 0;
  std::unique_ptr<PeriodicTask> task;
  task = std::make_unique<PeriodicTask>(engine, 1.0, 0.0, [&] {
    if (++count == 3) task->stop();
  });
  engine.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, DestructorCancels) {
  Engine engine;
  int count = 0;
  {
    PeriodicTask task(engine, 1.0, 0.0, [&] { ++count; });
    engine.run_until(2.5);
  }
  engine.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, InvalidArgsThrow) {
  Engine engine;
  EXPECT_THROW(PeriodicTask(engine, 0.0, 0.0, [] {}), Error);
  EXPECT_THROW(PeriodicTask(engine, 1.0, -1.0, [] {}), Error);
}

}  // namespace
}  // namespace lts::sim

// ------------------------------------------------------ additional edges ----

namespace lts::sim {
namespace {

TEST(Engine, ZeroDelayEventFiresAtSameTimestamp) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(5.0, [&] {
    engine.schedule_in(0.0, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Engine, ManyInterleavedCancellationsStayConsistent) {
  Engine engine;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(engine.schedule_at(i * 0.1, [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) engine.cancel(ids[i]);
  engine.run();
  EXPECT_EQ(fired, 200 - 67);
  EXPECT_EQ(engine.num_pending(), 0u);
}

TEST(Engine, RunUntilRepeatedNoEvents) {
  Engine engine;
  engine.run_until(1.0);
  engine.run_until(1.0);  // same time: allowed
  EXPECT_THROW(engine.run_until(0.5), Error);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
}

TEST(PeriodicTask, TwoTasksInterleaveDeterministically) {
  Engine engine;
  std::string order;
  PeriodicTask a(engine, 2.0, 0.0, [&] { order += 'a'; });
  PeriodicTask b(engine, 3.0, 0.0, [&] { order += 'b'; });
  engine.run_until(6.0);
  // t=0: a,b (insertion order); t=2 a; t=3 b; t=4 a; t=6 b before a (b's
  // re-arm was scheduled at t=3, earlier than a's at t=4).
  EXPECT_EQ(order, "abababa");
}

// ------------------------------------------------------ shard batching ----

TEST(EngineShards, SameTimeEventsGroupByAscendingShard) {
  Engine engine;
  std::string order;
  // Inserted out of shard order on purpose: grouping must come from the
  // comparator, not insertion.
  engine.schedule_at(1.0, /*shard=*/2, [&] { order += "c"; });
  engine.schedule_at(1.0, /*shard=*/0, [&] { order += "a"; });
  engine.schedule_at(1.0, /*shard=*/1, [&] { order += "b"; });
  engine.schedule_at(1.0, /*shard=*/1, [&] { order += "B"; });
  // Time still dominates: an earlier event of a high shard runs first.
  engine.schedule_at(0.5, /*shard=*/7, [&] { order += "z"; });
  engine.run();
  EXPECT_EQ(order, "zabBc");
}

TEST(EngineShards, UnshardedApiIsShardZero) {
  Engine engine;
  std::string order;
  engine.schedule_at(1.0, /*shard=*/1, [&] { order += "s"; });
  engine.schedule_at(1.0, [&] { order += "u"; });  // unsharded -> shard 0
  engine.run();
  EXPECT_EQ(order, "us");
}

TEST(EngineShards, NegativeShardThrows) {
  Engine engine;
  EXPECT_THROW(engine.schedule_at(1.0, -1, [] {}), Error);
}

TEST(EngineShards, BatchHooksFireAtGroupBoundaries) {
  Engine engine;
  std::string trace;
  engine.set_shard_batch_hooks(
      [&](int s) { trace += "B" + std::to_string(s); },
      [&](int s) { trace += "E" + std::to_string(s); });
  const auto event = [&](SimTime t, int shard) {
    engine.schedule_at(t, shard, [&trace] { trace += "."; });
  };
  event(1.0, 0);
  event(1.0, 0);
  event(1.0, 1);
  event(2.0, 1);  // same shard, new time: still a fresh batch
  engine.run();
  // The final batch closes when the queue drains.
  EXPECT_EQ(trace, "B0..E0B1.E1B1.E1");
}

TEST(EngineShards, CancelledEventsOpenNoBatch) {
  Engine engine;
  std::string trace;
  engine.set_shard_batch_hooks(
      [&](int s) { trace += "B" + std::to_string(s); },
      [&](int s) { trace += "E" + std::to_string(s); });
  const auto keep = engine.schedule_at(1.0, 1, [&] { trace += "."; });
  const auto drop = engine.schedule_at(1.0, 0, [&] { trace += "x"; });
  engine.cancel(drop);
  engine.run();
  (void)keep;
  // Shard 0's only event was cancelled before firing: no empty B0/E0 pair.
  EXPECT_EQ(trace, "B1.E1");
}

TEST(EngineShards, DetachingHooksClosesTheOpenBatch) {
  Engine engine;
  std::string trace;
  engine.set_shard_batch_hooks(
      [&](int s) { trace += "B" + std::to_string(s); },
      [&](int s) { trace += "E" + std::to_string(s); });
  engine.schedule_at(1.0, 3, [&] { trace += "."; });
  engine.schedule_at(2.0, 3, [&] { trace += "."; });
  engine.step();  // fires the t=1 event, leaving its batch open
  engine.set_shard_batch_hooks(nullptr, nullptr);
  EXPECT_EQ(trace, "B3.E3");
  engine.run();  // no hooks installed: no further boundaries
  EXPECT_EQ(trace, "B3.E3.");
}

TEST(PeriodicTask, ShardedFiringsBatchWithTheirSite) {
  Engine engine;
  std::string order;
  // Insertion order says "b first", shard order says site 1 before site 2:
  // every same-instant firing pair must come out "ab".
  PeriodicTask b(engine, 1.0, 0.0, /*shard=*/2, [&] { order += 'b'; });
  PeriodicTask a(engine, 1.0, 0.0, /*shard=*/1, [&] { order += 'a'; });
  engine.run_until(2.5);
  EXPECT_EQ(order, "ababab");
}

}  // namespace
}  // namespace lts::sim
