// Unit tests for the paper's scheduler core: feature construction, fetcher,
// decision module, job builder, logger, trainer, and the assembled
// LtsScheduler pipeline.
#include <gtest/gtest.h>

#include <sstream>

#include "core/decision.hpp"
#include "core/features.hpp"
#include "core/fetcher.hpp"
#include "core/job_builder.hpp"
#include "core/logger.hpp"
#include "core/scheduler.hpp"
#include "core/trainer.hpp"
#include "k8s/manifest.hpp"

namespace lts::core {
namespace {

telemetry::NodeTelemetry sample_telemetry(const std::string& name) {
  telemetry::NodeTelemetry t;
  t.node = name;
  t.rtt_mean = 0.032;
  t.rtt_max = 0.070;
  t.rtt_std = 0.020;
  t.tx_rate = 50e6;
  t.rx_rate = 20e6;
  t.cpu_load = 1.5;
  t.mem_available = 6.0 * 1024 * 1024 * 1024;
  return t;
}

spark::JobConfig sample_config() {
  spark::JobConfig config;
  config.app = spark::AppType::kJoin;
  config.input_records = 750000;
  config.executors = 4;
  config.executor_memory = 2.0 * 1024 * 1024 * 1024;
  return config;
}

// ------------------------------------------------------------- features ----

TEST(Features, SchemaMatchesTable1) {
  const auto& names = FeatureConstructor::feature_names();
  EXPECT_EQ(names.size(), FeatureConstructor::num_features());
  // Network, node, and job groups must all be present (Table 1).
  EXPECT_NE(std::find(names.begin(), names.end(), "rtt_mean_ms"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "tx_rate_mbps"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "cpu_load"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "mem_available_gib"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "app_sort"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "input_records"),
            names.end());
}

TEST(Features, VectorMatchesSchemaAndUnits) {
  const auto x = FeatureConstructor::build(sample_telemetry("n"),
                                           sample_config());
  const auto& names = FeatureConstructor::feature_names();
  ASSERT_EQ(x.size(), names.size());
  auto at = [&](const std::string& name) {
    return x[static_cast<std::size_t>(
        std::find(names.begin(), names.end(), name) - names.begin())];
  };
  EXPECT_DOUBLE_EQ(at("rtt_mean_ms"), 32.0);
  EXPECT_DOUBLE_EQ(at("tx_rate_mbps"), 50.0);
  EXPECT_DOUBLE_EQ(at("mem_available_gib"), 6.0);
  EXPECT_DOUBLE_EQ(at("cpu_load"), 1.5);
  EXPECT_DOUBLE_EQ(at("input_records"), 750000.0);
  EXPECT_DOUBLE_EQ(at("executors"), 4.0);
}

TEST(Features, AppTypeOneHotExclusive) {
  const auto& names = FeatureConstructor::feature_names();
  for (const auto app : spark::kAllAppTypes) {
    auto config = sample_config();
    config.app = app;
    const auto x = FeatureConstructor::build(sample_telemetry("n"), config);
    double total = 0.0;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i].rfind("app_", 0) == 0) total += x[i];
    }
    EXPECT_DOUBLE_EQ(total, 1.0) << spark::to_string(app);
  }
}

TEST(Features, BuildAllKeepsNodeOrder) {
  telemetry::ClusterSnapshot snapshot;
  snapshot.nodes = {sample_telemetry("a"), sample_telemetry("b")};
  snapshot.nodes[1].cpu_load = 9.0;
  const auto all = FeatureConstructor::build_all(snapshot, sample_config());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_NE(all[0], all[1]);
}

// ------------------------------------------------------------- decision ----

TEST(Decision, RanksAscendingByPrediction) {
  const auto decision = DecisionModule::rank({
      {"slow", 30.0}, {"fast", 10.0}, {"mid", 20.0}});
  EXPECT_EQ(decision.selected(), "fast");
  EXPECT_EQ(decision.ranking[2].node, "slow");
  EXPECT_TRUE(decision.in_top_k("fast", 1));
  EXPECT_TRUE(decision.in_top_k("mid", 2));
  EXPECT_FALSE(decision.in_top_k("slow", 2));
}

TEST(Decision, TiesBrokenByName) {
  const auto decision = DecisionModule::rank({
      {"zeta", 10.0}, {"alpha", 10.0}});
  EXPECT_EQ(decision.selected(), "alpha");
}

TEST(Decision, EmptyRejected) {
  EXPECT_THROW(DecisionModule::rank({}), Error);
  Decision empty;
  EXPECT_THROW(empty.selected(), Error);
}

// ----------------------------------------------------------- job builder ----

TEST(JobBuilder, ManifestPinsSelectedNode) {
  const std::string yaml =
      JobBuilder::render_manifest(sample_config(), "job-1", "node-5");
  const auto pins = k8s::parse_manifest_node_affinity(yaml);
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins[0], "node-5");
  EXPECT_NE(yaml.find("join"), std::string::npos);
}

TEST(JobBuilder, DriverPodCarriesAffinityExecutorsDoNot) {
  const auto driver = JobBuilder::driver_pod(sample_config(), "job-1", "n2");
  ASSERT_TRUE(driver.node_affinity.has_value());
  EXPECT_TRUE(driver.node_affinity->matches("n2"));
  const auto exec = JobBuilder::executor_pod(sample_config(), "job-1", 0);
  EXPECT_FALSE(exec.node_affinity.has_value());
  EXPECT_EQ(exec.name, "job-1-exec-1");
  EXPECT_DOUBLE_EQ(exec.requests.cpu, sample_config().executor_cores);
}

TEST(JobBuilder, ManifestEncodesShufflePartitions) {
  auto config = sample_config();
  config.shuffle_partitions = 24;
  const std::string yaml = JobBuilder::render_manifest(config, "j", "n");
  EXPECT_NE(yaml.find("\"spark.sql.shuffle.partitions\": \"24\""),
            std::string::npos);
}

// --------------------------------------------------------------- logger ----

TEST(Logger, RoundTripsRecords) {
  TrainingLogger logger;
  TrainingRecord record;
  record.scenario_id = "sort-01";
  record.node = "node-2";
  record.snapshot_time = 40.0;
  record.telemetry = sample_telemetry("node-2");
  record.config = sample_config();
  record.duration = 17.25;
  record.shuffle_bytes = 123456789.0;
  record.max_spill_penalty = 1.5;
  logger.log(record);
  EXPECT_EQ(logger.size(), 1u);

  const auto parsed = TrainingLogger::parse_row(logger.table(), 0);
  EXPECT_EQ(parsed.scenario_id, "sort-01");
  EXPECT_EQ(parsed.node, "node-2");
  EXPECT_NEAR(parsed.telemetry.rtt_mean, record.telemetry.rtt_mean, 1e-9);
  // %.9g formatting keeps ~9 significant digits; byte counts round.
  EXPECT_NEAR(parsed.telemetry.mem_available,
              record.telemetry.mem_available, 16.0);
  EXPECT_EQ(parsed.config.app, spark::AppType::kJoin);
  EXPECT_EQ(parsed.config.input_records, 750000);
  EXPECT_NEAR(parsed.duration, 17.25, 1e-9);
  EXPECT_NEAR(parsed.max_spill_penalty, 1.5, 1e-9);
}

TEST(Logger, CsvSurvivesSerialization) {
  TrainingLogger logger;
  TrainingRecord record;
  record.scenario_id = "join-02";
  record.node = "node-1";
  record.telemetry = sample_telemetry("node-1");
  record.config = sample_config();
  record.duration = 9.5;
  logger.log(record);
  std::ostringstream out;
  logger.table().write(out);
  std::istringstream in(out.str());
  const CsvTable reread = CsvTable::read(in);
  const auto parsed = TrainingLogger::parse_row(reread, 0);
  EXPECT_NEAR(parsed.duration, 9.5, 1e-9);
}

TEST(Logger, RejectsIncompleteRun) {
  TrainingLogger logger;
  telemetry::ClusterSnapshot snapshot;
  snapshot.nodes = {sample_telemetry("node-1")};
  spark::AppResult result;  // completed == false
  EXPECT_THROW(logger.log_run("x", snapshot, sample_config(), result),
               Error);
}

// -------------------------------------------------------------- trainer ----

ml::Dataset synthetic_training_dataset(std::size_t n, std::uint64_t seed) {
  // Build a corpus through the logger so the schema path is exercised.
  Rng rng(seed);
  TrainingLogger logger;
  for (std::size_t i = 0; i < n; ++i) {
    TrainingRecord r;
    r.scenario_id = "s";
    r.node = "node-1";
    r.telemetry = sample_telemetry("node-1");
    r.telemetry.cpu_load = rng.uniform(0.0, 4.0);
    r.telemetry.tx_rate = rng.uniform(0.0, 200e6);
    r.config = sample_config();
    r.config.input_records = 100000 + 100000 * (i % 10);
    // Duration with learnable structure.
    r.duration = 5.0 + r.config.input_records / 2e5 +
                 0.8 * r.telemetry.cpu_load +
                 r.telemetry.tx_rate / 100e6 + 0.05 * rng.normal();
    logger.log(r);
  }
  return Trainer::dataset_from_log(logger.table());
}

TEST(Trainer, DatasetFromLogHasSchema) {
  const auto data = synthetic_training_dataset(50, 1);
  EXPECT_EQ(data.size(), 50u);
  EXPECT_EQ(data.num_features(), FeatureConstructor::num_features());
  EXPECT_EQ(data.feature_names(), FeatureConstructor::feature_names());
}

TEST(Trainer, TrainsEveryRegisteredFamily) {
  const auto data = synthetic_training_dataset(300, 2);
  for (const std::string name : {"linear", "xgboost", "random_forest"}) {
    const auto model = Trainer::train(name, data);
    ASSERT_TRUE(model->is_fitted()) << name;
    const double pred = model->predict_row(data.row(0));
    EXPECT_GT(pred, 0.0) << name;
    EXPECT_LT(pred, 100.0) << name;
  }
}

TEST(Trainer, RejectsNonObjectParams) {
  const auto data = synthetic_training_dataset(30, 9);
  // Null means "use defaults"; an object is taken as-is. Anything else is
  // a malformed config that must fail loudly, not silently fall back.
  EXPECT_NO_THROW(Trainer::train("linear", data, Json()));
  Json params = Json::object();
  params["l2"] = 0.5;
  EXPECT_NO_THROW(Trainer::train("linear", data, params));
  EXPECT_THROW(Trainer::train("linear", data, Json("l2=0.5")), Error);
  EXPECT_THROW(Trainer::train("linear", data, Json(3.0)), Error);
  EXPECT_THROW(Trainer::train("linear", data, Json::array()), Error);
  EXPECT_THROW(
      Trainer::train_and_evaluate("linear", data, 0.2, 1, Json(true)),
      Error);
}

TEST(Trainer, TooFewRowsReportsSkipInsteadOfThrowing) {
  std::unique_ptr<ml::Regressor> out;
  const auto one_row = synthetic_training_dataset(1, 10);
  const auto report =
      Trainer::train_and_evaluate("linear", one_row, 0.2, 1, Json(), &out);
  EXPECT_TRUE(report.skipped);
  EXPECT_EQ(report.train_rows, 1u);
  EXPECT_NE(report.skip_reason.find("too small"), std::string::npos);
  EXPECT_EQ(out, nullptr);  // a skipped evaluation must not touch *out

  // An extreme test fraction makes the holdout swallow the dataset; that
  // is the same infeasible split, reported the same way.
  const auto few = synthetic_training_dataset(5, 11);
  EXPECT_TRUE(Trainer::train_and_evaluate("linear", few, 0.99, 1).skipped);

  // A healthy dataset is unaffected.
  const auto ok = synthetic_training_dataset(50, 12);
  EXPECT_FALSE(Trainer::train_and_evaluate("linear", ok, 0.2, 1).skipped);
}

TEST(Trainer, EvaluationReportsSaneMetrics) {
  // XGBoost here: the synthetic corpus has 12 constant columns, which the
  // random-forest default's narrow per-split feature draw (tuned for the
  // real telemetry corpus) handles poorly.
  const auto data = synthetic_training_dataset(500, 3);
  const auto report = Trainer::train_and_evaluate("xgboost", data, 0.2, 1);
  EXPECT_EQ(report.train_rows + report.test_rows, 500u);
  EXPECT_GT(report.test_r2, 0.8);
  EXPECT_LT(report.test_rmse, 1.0);
  EXPECT_LE(report.train_rmse, report.test_rmse * 1.5);
}

TEST(Trainer, DefaultParamsUseLogTarget) {
  for (const std::string name : {"linear", "xgboost", "random_forest"}) {
    const Json p = Trainer::default_params(name);
    EXPECT_TRUE(p.at("log_target").as_bool()) << name;
  }
}

// ------------------------------------------------------------- scheduler ----

TEST(Scheduler, PipelineRanksByPredictedDuration) {
  // Model: duration = cpu_load (perfectly learnable); the scheduler must
  // therefore rank by cpu_load ascending.
  Rng rng(4);
  ml::Dataset data;
  data.set_feature_names(FeatureConstructor::feature_names());
  for (int i = 0; i < 400; ++i) {
    auto t = sample_telemetry("x");
    t.cpu_load = rng.uniform(0.0, 6.0);
    const auto x = FeatureConstructor::build(t, sample_config());
    data.add_row(x, 1.0 + t.cpu_load);
  }
  auto model = std::shared_ptr<const ml::Regressor>(
      Trainer::train("random_forest", data));

  telemetry::Tsdb tsdb;  // unused by schedule_from_snapshot
  telemetry::ClusterSnapshot snapshot;
  snapshot.nodes = {sample_telemetry("busy"), sample_telemetry("idle"),
                    sample_telemetry("mid")};
  snapshot.nodes[0].cpu_load = 5.0;
  snapshot.nodes[1].cpu_load = 0.2;
  snapshot.nodes[2].cpu_load = 2.5;

  LtsScheduler scheduler(
      TelemetryFetcher(tsdb, {"busy", "idle", "mid"}), model);
  const auto decision =
      scheduler.schedule_from_snapshot(snapshot, sample_config());
  EXPECT_EQ(decision.selected(), "idle");
  EXPECT_EQ(decision.ranking[1].node, "mid");
  EXPECT_EQ(decision.ranking[2].node, "busy");
  // Manifest pins the winner.
  const auto yaml =
      scheduler.build_manifest(sample_config(), "job-7", decision);
  EXPECT_EQ(k8s::parse_manifest_node_affinity(yaml)[0], "idle");
}

TEST(Scheduler, RejectsUnfittedModel) {
  telemetry::Tsdb tsdb;
  auto unfitted = std::shared_ptr<const ml::Regressor>(
      ml::create_regressor("linear"));
  EXPECT_THROW(
      LtsScheduler(TelemetryFetcher(tsdb, {"a"}), unfitted), Error);
}

TEST(Fetcher, RequiresNodes) {
  telemetry::Tsdb tsdb;
  EXPECT_THROW(TelemetryFetcher(tsdb, {}), Error);
}

}  // namespace
}  // namespace lts::core

// ------------------------------------------------------- risk aversion ----

namespace lts::core {
namespace {

TEST(Scheduler, RiskAversionPenalizesUncertainNodes) {
  // A hand-built ensemble-like model: node with cpu_load > 3 gets a
  // slightly lower mean but a huge spread. k = 0 picks it; k = 1 avoids it.
  class FakeModel : public ml::Regressor {
   public:
    void fit(const ml::Dataset&) override {}
    bool is_fitted() const override { return true; }
    std::string name() const override { return "fake"; }
    Json to_json() const override { return Json::object(); }
    void from_json(const Json&) override {}
    double predict_row(std::span<const double> x) const override {
      return predict_with_uncertainty(x).mean;
    }
    ml::Prediction predict_with_uncertainty(
        std::span<const double> x) const override {
      const double cpu = x[5];  // cpu_load slot in the Table-1 layout
      if (cpu > 3.0) return {9.0, 5.0};  // fast on average, very unsure
      return {10.0, 0.1};
    }
  };
  auto model = std::make_shared<const FakeModel>();

  telemetry::Tsdb tsdb;
  telemetry::ClusterSnapshot snapshot;
  telemetry::NodeTelemetry risky;
  risky.node = "risky";
  risky.cpu_load = 5.0;
  telemetry::NodeTelemetry safe;
  safe.node = "safe";
  safe.cpu_load = 1.0;
  snapshot.nodes = {risky, safe};
  spark::JobConfig job;

  LtsScheduler mean_policy(TelemetryFetcher(tsdb, {"risky", "safe"}), model,
                           FeatureSet::kTable1, 0.0);
  EXPECT_EQ(mean_policy.schedule_from_snapshot(snapshot, job).selected(),
            "risky");
  LtsScheduler pessimist(TelemetryFetcher(tsdb, {"risky", "safe"}), model,
                         FeatureSet::kTable1, 1.0);
  EXPECT_EQ(pessimist.schedule_from_snapshot(snapshot, job).selected(),
            "safe");
}

TEST(Scheduler, NegativeRiskAversionRejected) {
  telemetry::Tsdb tsdb;
  auto model = std::shared_ptr<const ml::Regressor>(
      ml::create_regressor("linear"));
  EXPECT_THROW(LtsScheduler(TelemetryFetcher(tsdb, {"a"}), model,
                            FeatureSet::kTable1, -1.0),
               Error);
}

}  // namespace
}  // namespace lts::core

// --------------------------------------------------------------- bandit ----

#include "core/bandit.hpp"

namespace lts::core {
namespace {

telemetry::ClusterSnapshot two_node_snapshot(double load_a, double load_b) {
  telemetry::ClusterSnapshot snapshot;
  telemetry::NodeTelemetry a, b;
  a.node = "a";
  a.cpu_load = load_a;
  b.node = "b";
  b.cpu_load = load_b;
  snapshot.nodes = {a, b};
  return snapshot;
}

TEST(Bandit, ExploresUntilModelExists) {
  BanditScheduler bandit(BanditOptions{}, 1);
  EXPECT_FALSE(bandit.value_model_ready());
  const auto snapshot = two_node_snapshot(1.0, 2.0);
  spark::JobConfig job;
  // Without a model every pick is exploration, but always in range.
  for (int i = 0; i < 20; ++i) {
    EXPECT_LT(bandit.pick(snapshot, job), 2u);
  }
  EXPECT_THROW(bandit.pick_greedy(snapshot, job), Error);
}

TEST(Bandit, LearnsLoadAvoidanceFromItsOwnChoices) {
  BanditOptions options;
  options.refit_interval = 5;
  BanditScheduler bandit(options, 7);
  spark::JobConfig job;
  Rng rng(3);
  // Reward structure: duration = 5 + 2 * cpu_load of the chosen node.
  for (int i = 0; i < 80; ++i) {
    const auto snapshot =
        two_node_snapshot(rng.uniform(0, 4), rng.uniform(0, 4));
    const std::size_t choice = bandit.pick(snapshot, job);
    const double duration =
        5.0 + 2.0 * snapshot.nodes[choice].cpu_load;
    bandit.observe(snapshot, job, choice, duration);
  }
  ASSERT_TRUE(bandit.value_model_ready());
  // Greedy policy must now prefer the less-loaded node.
  const auto test_snapshot = two_node_snapshot(3.5, 0.5);
  EXPECT_EQ(bandit.pick_greedy(test_snapshot, job), 1u);
  const auto reversed = two_node_snapshot(0.5, 3.5);
  EXPECT_EQ(bandit.pick_greedy(reversed, job), 0u);
}

TEST(Bandit, EpsilonDecays) {
  BanditScheduler bandit(BanditOptions{}, 1);
  const double initial = bandit.current_epsilon();
  const auto snapshot = two_node_snapshot(1.0, 1.0);
  spark::JobConfig job;
  for (int i = 0; i < 200; ++i) {
    bandit.observe(snapshot, job, 0, 10.0);
  }
  EXPECT_LT(bandit.current_epsilon(), initial);
  EXPECT_GE(bandit.current_epsilon(), BanditOptions{}.min_epsilon);
}

TEST(Bandit, RejectsBadObservations) {
  BanditScheduler bandit(BanditOptions{}, 1);
  const auto snapshot = two_node_snapshot(1.0, 1.0);
  spark::JobConfig job;
  EXPECT_THROW(bandit.observe(snapshot, job, 5, 10.0), Error);
  EXPECT_THROW(bandit.observe(snapshot, job, 0, -1.0), Error);
}

}  // namespace
}  // namespace lts::core
