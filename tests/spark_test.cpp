// Unit tests for the Spark engine: job configs, workload DAG builders, and
// the runtime's execution semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/background.hpp"
#include "cluster/cluster.hpp"
#include "spark/job.hpp"
#include "spark/runtime.hpp"
#include "spark/workloads.hpp"

namespace lts::spark {
namespace {

JobConfig basic_config(AppType app = AppType::kSort) {
  JobConfig config;
  config.app = app;
  config.input_records = 500000;
  config.executors = 3;
  return config;
}

// ----------------------------------------------------------------- job ----

TEST(JobConfig, AppTypeRoundTrip) {
  for (const auto app : kAllAppTypes) {
    EXPECT_EQ(app_type_from_string(to_string(app)), app);
  }
  EXPECT_THROW(app_type_from_string("mapreduce"), Error);
}

TEST(JobConfig, ValidationCatchesBadValues) {
  JobConfig config = basic_config();
  config.executors = 0;
  EXPECT_THROW(config.validate(), Error);
  config = basic_config();
  config.input_records = -1;
  EXPECT_THROW(config.validate(), Error);
  config = basic_config();
  config.join_skew = 0.5;
  EXPECT_THROW(config.validate(), Error);
}

TEST(JobConfig, DefaultShufflePartitions) {
  JobConfig config = basic_config();
  config.executors = 2;
  EXPECT_EQ(config.effective_shuffle_partitions(), 8);  // floor of 8
  config.executors = 6;
  EXPECT_EQ(config.effective_shuffle_partitions(), 12);
  config.shuffle_partitions = 5;
  EXPECT_EQ(config.effective_shuffle_partitions(), 5);
}

// ---------------------------------------------------------------- dags ----

TEST(Workloads, AllAppsBuildValidDags) {
  Rng rng(1);
  for (const auto app : kAllAppTypes) {
    const auto dag = build_dag(basic_config(app), rng);
    EXPECT_GE(dag.stages.size(), 2u) << to_string(app);
    EXPECT_GT(dag.result_bytes, 0.0);
    EXPECT_GT(dag.broadcast_bytes, 0.0);
    EXPECT_GT(dag.total_cpu_work(), 0.0);
    EXPECT_GT(dag.total_shuffle_bytes(), 0.0);
  }
}

TEST(Workloads, SortShufflesEntireInput) {
  Rng rng(1);
  const auto config = basic_config(AppType::kSort);
  const auto dag = build_dag(config, rng);
  EXPECT_DOUBLE_EQ(dag.stages[1].shuffle_bytes_in, config.input_bytes());
}

TEST(Workloads, GroupByShufflesLessThanSort) {
  Rng rng(1);
  const auto sort_dag = build_dag(basic_config(AppType::kSort), rng);
  const auto group_dag = build_dag(basic_config(AppType::kGroupBy), rng);
  EXPECT_LT(group_dag.total_shuffle_bytes(), sort_dag.total_shuffle_bytes());
}

TEST(Workloads, PageRankStagesScaleWithIterations) {
  Rng rng(1);
  auto config = basic_config(AppType::kPageRank);
  config.iterations = 2;
  const auto dag2 = build_dag(config, rng);
  config.iterations = 5;
  const auto dag5 = build_dag(config, rng);
  EXPECT_EQ(dag5.stages.size(), dag2.stages.size() + 3);
  // Iteration stages carry the driver-sync barrier.
  EXPECT_GT(dag5.stages[1].driver_sync_in, 0.0);
  EXPECT_GT(dag5.stages[1].driver_sync_rounds, 0);
}

TEST(Workloads, JoinWeightsAreSkewedAndNormalized) {
  Rng rng(7);
  auto config = basic_config(AppType::kJoin);
  config.join_skew = 1.5;
  const auto dag = build_dag(config, rng);
  const auto& join_stage = dag.stages[2];
  ASSERT_FALSE(join_stage.task_weights.empty());
  double total = 0.0, max_w = 0.0;
  for (const double w : join_stage.task_weights) {
    total += w;
    max_w = std::max(max_w, w);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  const double uniform = 1.0 / join_stage.task_weights.size();
  EXPECT_GT(max_w, 2.0 * uniform);  // visibly skewed
}

TEST(Workloads, HigherSkewConcentratesMore) {
  auto max_weight = [](double skew) {
    Rng rng(7);
    auto config = basic_config(AppType::kJoin);
    config.join_skew = skew;
    const auto dag = build_dag(config, rng);
    double max_w = 0.0;
    for (const double w : dag.stages[2].task_weights) {
      max_w = std::max(max_w, w);
    }
    return max_w;
  };
  EXPECT_GT(max_weight(1.8), max_weight(1.1));
}

TEST(Workloads, DagValidationCatchesCorruption) {
  Rng rng(1);
  auto dag = build_dag(basic_config(), rng);
  dag.stages[1].deps = {5};
  EXPECT_THROW(dag.validate(), Error);
  dag = build_dag(basic_config(), rng);
  dag.stages[0].num_tasks = 0;
  EXPECT_THROW(dag.validate(), Error);
}

// -------------------------------------------------------------- runtime ----

struct RuntimeFixture {
  sim::Engine engine;
  cluster::Cluster cluster{engine, cluster::paper_cluster_spec()};

  AppResult run(const JobConfig& config, std::size_t driver,
                std::vector<std::size_t> executors, std::uint64_t seed = 3) {
    Rng dag_rng(seed);
    auto dag = build_dag(config, dag_rng);
    SparkApp app(cluster, config, std::move(dag), driver, executors,
                 Rng(seed ^ 0xabc));
    bool done = false;
    app.submit([&](const AppResult&) { done = true; });
    while (!done) {
      if (!engine.step()) break;
    }
    EXPECT_TRUE(done);
    return app.result();
  }
};

TEST(Runtime, JobCompletesWithSensibleResult) {
  RuntimeFixture f;
  const auto result = f.run(basic_config(), 0, {1, 2, 3});
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.duration(), 3.0);   // startup alone costs seconds
  EXPECT_LT(result.duration(), 120.0);
  EXPECT_EQ(result.driver_node, "node-1");
  EXPECT_EQ(result.executor_nodes.size(), 3u);
  EXPECT_GT(result.total_shuffle_bytes, 0.0);
  for (const auto& stage : result.stages) {
    EXPECT_GE(stage.end, stage.start);
  }
}

TEST(Runtime, StagesRespectDependencies) {
  RuntimeFixture f;
  const auto result = f.run(basic_config(AppType::kPageRank), 0, {1, 2, 3});
  for (std::size_t s = 1; s < result.stages.size(); ++s) {
    // Chain DAG: each stage starts only after the previous one ends.
    EXPECT_GE(result.stages[s].start, result.stages[s - 1].end - 1e-9);
  }
}

TEST(Runtime, LargerInputTakesLonger) {
  RuntimeFixture f1, f2;
  auto small = basic_config();
  small.input_records = 200000;
  auto large = basic_config();
  large.input_records = 2000000;
  const auto r_small = f1.run(small, 0, {1, 2, 3});
  const auto r_large = f2.run(large, 0, {1, 2, 3});
  EXPECT_GT(r_large.duration(), r_small.duration());
  EXPECT_GT(r_large.total_shuffle_bytes, r_small.total_shuffle_bytes);
}

TEST(Runtime, DeterministicForSameSeed) {
  RuntimeFixture f1, f2;
  const auto r1 = f1.run(basic_config(), 2, {0, 3, 4}, 11);
  const auto r2 = f2.run(basic_config(), 2, {0, 3, 4}, 11);
  EXPECT_DOUBLE_EQ(r1.duration(), r2.duration());
  EXPECT_DOUBLE_EQ(r1.total_shuffle_bytes, r2.total_shuffle_bytes);
}

TEST(Runtime, CpuContentionOnDriverNodeSlowsJob) {
  RuntimeFixture loaded, quiet;
  loaded.cluster.node(0).cpu().add_persistent(5.5);
  const auto r_loaded = loaded.run(basic_config(), 0, {1, 2, 3});
  const auto r_quiet = quiet.run(basic_config(), 0, {1, 2, 3});
  EXPECT_GT(r_loaded.duration(), r_quiet.duration());
}

TEST(Runtime, NetworkContentionOnDriverNodeSlowsJob) {
  // Saturate the driver node's access link with background fetches; keep
  // the executors and the background server away from each other so the
  // collect/broadcast path through the driver NIC is the only difference.
  RuntimeFixture loaded, quiet;
  cluster::BackgroundLoadOptions heavy;
  heavy.parallel_fetches = 8;
  heavy.mean_pause = 0.05;
  cluster::BackgroundLoad bg(loaded.cluster, 0, 3, heavy, Rng(2));
  bg.start();
  loaded.engine.run_until(10.0);
  quiet.engine.run_until(10.0);
  auto config = basic_config();
  config.input_records = 2000000;
  config.record_bytes = 200.0;  // 400 MB input -> 100 MB collect
  const auto r_loaded = loaded.run(config, 0, {1, 4, 5});
  const auto r_quiet = quiet.run(config, 0, {1, 4, 5});
  EXPECT_GT(r_loaded.duration(), 1.03 * r_quiet.duration());
}

TEST(Runtime, TightExecutorMemoryCausesSpill) {
  RuntimeFixture tight, roomy;
  auto config = basic_config(AppType::kJoin);
  config.input_records = 2000000;
  config.record_bytes = 200.0;
  config.join_skew = 1.8;
  // The heaviest Zipf partition's working set (~480 MB here) far exceeds
  // its share of a 128 MB heap.
  config.executor_memory = 128.0 * 1024 * 1024;
  const auto r_tight = tight.run(config, 0, {1, 2, 3});
  config.executor_memory = 4.0 * 1024 * 1024 * 1024;
  const auto r_roomy = roomy.run(config, 0, {1, 2, 3});
  EXPECT_GT(r_tight.max_spill_penalty, 1.0);
  EXPECT_GT(r_tight.duration(), r_roomy.duration());
}

TEST(Runtime, ResourcesReleasedAfterCompletion) {
  RuntimeFixture f;
  f.run(basic_config(), 0, {1, 2, 3});
  for (std::size_t n = 0; n < f.cluster.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(f.cluster.node(n).memory_used(), 0.0) << n;
    EXPECT_DOUBLE_EQ(f.cluster.node(n).cpu().total_demand(), 0.0) << n;
  }
  EXPECT_EQ(f.cluster.flows().num_active(), 0u);
}

TEST(Runtime, CancelReleasesEverything) {
  RuntimeFixture f;
  Rng dag_rng(3);
  auto dag = build_dag(basic_config(), dag_rng);
  SparkApp app(f.cluster, basic_config(), std::move(dag), 0, {1, 2, 3},
               Rng(3));
  bool completed = false;
  app.submit([&](const AppResult&) { completed = true; });
  f.engine.run_until(6.0);  // mid-flight
  app.cancel();
  f.engine.run_until(300.0);
  EXPECT_FALSE(completed);
  for (std::size_t n = 0; n < f.cluster.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(f.cluster.node(n).memory_used(), 0.0);
    EXPECT_DOUBLE_EQ(f.cluster.node(n).cpu().total_demand(), 0.0);
  }
  EXPECT_EQ(f.cluster.flows().num_active(), 0u);
}

TEST(Runtime, DoubleSubmitRejected) {
  RuntimeFixture f;
  Rng dag_rng(3);
  auto dag = build_dag(basic_config(), dag_rng);
  SparkApp app(f.cluster, basic_config(), std::move(dag), 0, {1, 2, 3},
               Rng(3));
  app.submit(nullptr);
  EXPECT_THROW(app.submit(nullptr), Error);
}

TEST(Runtime, ExecutorCountMustMatchPlacements) {
  RuntimeFixture f;
  Rng dag_rng(3);
  auto dag = build_dag(basic_config(), dag_rng);
  EXPECT_THROW(SparkApp(f.cluster, basic_config(), std::move(dag), 0,
                        {1, 2}, Rng(3)),
               Error);
}

TEST(Runtime, CollocatedExecutorsUseLoopback) {
  // All executors on the driver node: no WAN traffic at all.
  RuntimeFixture f;
  const auto result = f.run(basic_config(), 0, {0, 0, 0});
  EXPECT_TRUE(result.completed);
  EXPECT_DOUBLE_EQ(result.total_shuffle_bytes, 0.0);  // everything local
}

TEST(Runtime, PageRankMoreRttSensitiveThanSort) {
  // Same cluster, driver on FIU (far) vs UCSD (near): the iterative app
  // should lose relatively more from the far placement.
  auto run_app = [](AppType app, std::size_t driver) {
    RuntimeFixture f;
    JobConfig config = basic_config(app);
    config.executors = 4;
    config.iterations = 4;
    return f.run(config, driver, {0, 1, 4, 5}).duration();
  };
  const double sort_near = run_app(AppType::kSort, 0);
  const double sort_far = run_app(AppType::kSort, 2);
  const double pr_near = run_app(AppType::kPageRank, 0);
  const double pr_far = run_app(AppType::kPageRank, 2);
  const double sort_ratio = sort_far / sort_near;
  const double pr_ratio = pr_far / pr_near;
  EXPECT_GT(pr_ratio, sort_ratio);
}

}  // namespace
}  // namespace lts::spark

// --------------------------------------------------- extension workloads ----

namespace lts::spark {
namespace {

TEST(ExtensionWorkloads, MlPipelineShapesFollowConfig) {
  Rng rng(1);
  JobConfig config = basic_config(AppType::kMlPipeline);
  config.iterations = 3;
  const auto dag = build_dag(config, rng);
  // load + 3 epochs + evaluate.
  ASSERT_EQ(dag.stages.size(), 5u);
  for (std::size_t s = 1; s <= 3; ++s) {
    EXPECT_GT(dag.stages[s].driver_sync_in, 0.0);
    EXPECT_GT(dag.stages[s].driver_sync_out, 0.0);
    EXPECT_GT(dag.stages[s].driver_sync_rounds, 0);
  }
  EXPECT_GT(dag.broadcast_bytes, 150e6);  // jar + initial model
}

TEST(ExtensionWorkloads, StreamingIsControlPlaneHeavy) {
  Rng rng(1);
  JobConfig config = basic_config(AppType::kStreaming);
  config.iterations = 3;
  const auto dag = build_dag(config, rng);
  ASSERT_EQ(dag.stages.size(), 10u);  // source + 9 micro-batches
  int sync_stages = 0;
  for (const auto& stage : dag.stages) {
    if (stage.driver_sync_rounds > 0) ++sync_stages;
  }
  EXPECT_EQ(sync_stages, 9);
}

TEST(ExtensionWorkloads, BothRunToCompletion) {
  for (const auto app : {AppType::kMlPipeline, AppType::kStreaming}) {
    RuntimeFixture f;
    JobConfig config = basic_config(app);
    config.iterations = 2;
    const auto result = f.run(config, 0, {1, 2, 4});
    EXPECT_TRUE(result.completed) << to_string(app);
    EXPECT_GT(result.duration(), 3.0);
    EXPECT_LT(result.duration(), 300.0);
  }
}

TEST(ExtensionWorkloads, UnseenAppsEncodeAsZeroOneHot) {
  // The paper one-hot excludes the extension apps by design.
  JobConfig config = basic_config(AppType::kMlPipeline);
  for (const auto app : kAllAppTypes) {
    EXPECT_NE(config.app, app);
  }
  EXPECT_EQ(std::string(to_string(AppType::kMlPipeline)), "ml_pipeline");
  EXPECT_EQ(app_type_from_string("streaming"), AppType::kStreaming);
}

TEST(ExtensionWorkloads, MlPipelineMoreDriverSensitiveThanSort) {
  auto run_app = [](AppType app, std::size_t driver) {
    RuntimeFixture f;
    JobConfig config = basic_config(app);
    config.executors = 4;
    config.iterations = 3;
    return f.run(config, driver, {0, 1, 4, 5}).duration();
  };
  const double sort_ratio =
      run_app(AppType::kSort, 2) / run_app(AppType::kSort, 0);
  const double ml_ratio =
      run_app(AppType::kMlPipeline, 2) / run_app(AppType::kMlPipeline, 0);
  EXPECT_GT(ml_ratio, sort_ratio);
}

}  // namespace
}  // namespace lts::spark

// ------------------------------------------------------- fault injection ----

namespace lts::spark {
namespace {

TEST(FaultInjection, RetriesSlowTheJobButItCompletes) {
  RuntimeOptions faulty;
  faulty.task_failure_rate = 0.4;
  RuntimeFixture with_faults, clean;
  JobConfig config = basic_config();

  Rng dag_rng(3);
  auto dag1 = build_dag(config, dag_rng);
  SparkApp faulty_app(with_faults.cluster, config, std::move(dag1), 0,
                      {1, 2, 3}, Rng(3 ^ 0xabc), faulty);
  bool done = false;
  faulty_app.submit([&](const AppResult&) { done = true; });
  while (!done) {
    ASSERT_TRUE(with_faults.engine.step());
  }
  const auto clean_result = clean.run(config, 0, {1, 2, 3});
  EXPECT_GT(faulty_app.result().task_retries, 0);
  EXPECT_GT(faulty_app.result().duration(), clean_result.duration());
  EXPECT_EQ(clean_result.task_retries, 0);
}

TEST(FaultInjection, DeterministicRetryCount) {
  auto run_once = [] {
    RuntimeOptions faulty;
    faulty.task_failure_rate = 0.3;
    RuntimeFixture f;
    Rng dag_rng(5);
    auto dag = build_dag(basic_config(), dag_rng);
    SparkApp app(f.cluster, basic_config(), std::move(dag), 1, {0, 2, 4},
                 Rng(77), faulty);
    bool done = false;
    app.submit([&](const AppResult&) { done = true; });
    while (!done) {
      if (!f.engine.step()) break;
    }
    return std::make_pair(app.result().task_retries,
                          app.result().duration());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(FaultInjection, ResourcesStillBalanceAfterRetries) {
  RuntimeOptions faulty;
  faulty.task_failure_rate = 0.5;
  RuntimeFixture f;
  Rng dag_rng(9);
  auto dag = build_dag(basic_config(AppType::kJoin), dag_rng);
  SparkApp app(f.cluster, basic_config(AppType::kJoin), std::move(dag), 0,
               {1, 2, 5}, Rng(9), faulty);
  bool done = false;
  app.submit([&](const AppResult&) { done = true; });
  while (!done) {
    ASSERT_TRUE(f.engine.step());
  }
  for (std::size_t n = 0; n < f.cluster.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(f.cluster.node(n).memory_used(), 0.0) << n;
    EXPECT_DOUBLE_EQ(f.cluster.node(n).cpu().total_demand(), 0.0) << n;
  }
}

}  // namespace
}  // namespace lts::spark
