// End-to-end integration tests: the full paper pipeline at reduced scale —
// collect telemetry corpus -> train offline -> schedule online -> execute
// on the simulated cluster -> verify the decision quality and artifacts.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/scheduler.hpp"
#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/evaluate.hpp"
#include "exp/scenario.hpp"
#include "k8s/manifest.hpp"

namespace lts {
namespace {

// Shared corpus: collected once (slowest step), reused by all tests.
class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto matrix = exp::paper_scenario_matrix();
    matrix.resize(16);
    exp::CollectorOptions options;
    options.repeats = 3;
    options.base_seed = 505;
    log_ = new CsvTable(exp::collect_training_data(matrix, options));
    data_ = new ml::Dataset(core::Trainer::dataset_from_log(*log_));
  }
  static void TearDownTestSuite() {
    delete log_;
    delete data_;
    log_ = nullptr;
    data_ = nullptr;
  }

  static CsvTable* log_;
  static ml::Dataset* data_;
};

CsvTable* PipelineFixture::log_ = nullptr;
ml::Dataset* PipelineFixture::data_ = nullptr;

TEST_F(PipelineFixture, CorpusHasExpectedShape) {
  EXPECT_EQ(log_->num_rows(), 16u * 6u * 3u);
  EXPECT_EQ(data_->num_features(),
            core::FeatureConstructor::num_features());
}

TEST_F(PipelineFixture, ModelsLearnSignal) {
  for (const std::string name : {"linear", "xgboost", "random_forest"}) {
    const auto report =
        core::Trainer::train_and_evaluate(name, *data_, 0.25, 11);
    EXPECT_GT(report.test_r2, 0.3) << name;  // clearly better than mean
  }
}

TEST_F(PipelineFixture, SupervisedBeatsRandomAndKube) {
  const auto matrix = exp::paper_scenario_matrix();
  std::vector<std::pair<std::string, std::shared_ptr<const ml::Regressor>>>
      models;
  models.emplace_back("random_forest",
                      std::shared_ptr<const ml::Regressor>(
                          core::Trainer::train("random_forest", *data_)));
  exp::EvalOptions eval;
  eval.num_scenarios = 25;
  eval.truth_repeats = 1;
  eval.base_seed = 123456;
  const auto result = exp::evaluate_methods(models, matrix, eval);
  const auto& rf = result.by_method("random_forest");
  const auto& random = result.by_method("random");
  const auto& kube = result.by_method("kube_default");
  // The paper's headline shape at miniature scale: the supervised model
  // clearly beats both blind baselines.
  EXPECT_GT(rf.top1, random.top1);
  EXPECT_GT(rf.top2, kube.top2);
  EXPECT_LT(rf.mean_regret, random.mean_regret);
}

TEST_F(PipelineFixture, EndToEndScheduleAndExecute) {
  const auto model = std::shared_ptr<const ml::Regressor>(
      core::Trainer::train("xgboost", *data_));
  exp::SimEnv env(2026);
  env.warmup();

  spark::JobConfig job;
  job.app = spark::AppType::kGroupBy;
  job.input_records = 800000;
  job.executors = 4;

  core::LtsScheduler scheduler(
      core::TelemetryFetcher(env.tsdb(), env.node_names()), model);
  const auto decision = scheduler.schedule(job, env.engine().now());
  ASSERT_EQ(decision.ranking.size(), 6u);

  // The Job Builder output pins exactly the selected node...
  const auto yaml = scheduler.build_manifest(job, "e2e-job", decision);
  const auto pins = k8s::parse_manifest_node_affinity(yaml);
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins[0], decision.selected());

  // ...and the job actually runs there.
  const auto result = env.run_job(
      job, env.cluster().node_index(decision.selected()), 99);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.driver_node, decision.selected());
}

TEST_F(PipelineFixture, ModelSurvivesDiskRoundTripInsideScheduler) {
  const auto model = core::Trainer::train("random_forest", *data_);
  ml::save_model(*model, "/tmp/lts_integration_model.json");
  const auto restored = std::shared_ptr<const ml::Regressor>(
      ml::load_model("/tmp/lts_integration_model.json"));

  exp::SimEnv env(31);
  env.warmup();
  spark::JobConfig job;
  job.executors = 3;
  core::LtsScheduler original(
      core::TelemetryFetcher(env.tsdb(), env.node_names()),
      std::shared_ptr<const ml::Regressor>(std::move(
          const_cast<std::unique_ptr<ml::Regressor>&>(model))));
  core::LtsScheduler reloaded(
      core::TelemetryFetcher(env.tsdb(), env.node_names()), restored);
  const auto a = original.schedule(job, env.engine().now());
  const auto b = reloaded.schedule(job, env.engine().now());
  ASSERT_EQ(a.ranking.size(), b.ranking.size());
  for (std::size_t i = 0; i < a.ranking.size(); ++i) {
    EXPECT_EQ(a.ranking[i].node, b.ranking[i].node);
    EXPECT_DOUBLE_EQ(a.ranking[i].predicted_duration,
                     b.ranking[i].predicted_duration);
  }
}

TEST_F(PipelineFixture, TrainingLogFileRoundTrip) {
  log_->write_file("/tmp/lts_integration_log.csv");
  const CsvTable reread = CsvTable::read_file("/tmp/lts_integration_log.csv");
  EXPECT_EQ(reread.num_rows(), log_->num_rows());
  const auto data = core::Trainer::dataset_from_log(reread);
  ASSERT_EQ(data.size(), data_->size());
  for (std::size_t i = 0; i < data.size(); i += 37) {
    EXPECT_NEAR(data.target(i), data_->target(i), 1e-6);
  }
}

TEST(Integration, HeuristicsSitBetweenBlindAndLearned) {
  // least_rtt / least_cpu use one telemetry signal each; on network-heavy
  // workloads least_rtt should at least beat random.
  auto matrix = exp::paper_scenario_matrix();
  exp::EvalOptions eval;
  eval.num_scenarios = 30;
  eval.truth_repeats = 1;
  eval.base_seed = 97531;
  eval.heuristics = {"least_rtt", "least_cpu"};
  const auto result =
      exp::evaluate_methods(std::vector<exp::MethodUnderTest>{}, matrix, eval);
  EXPECT_GT(result.by_method("least_rtt").top2,
            result.by_method("random").top2);
}

}  // namespace
}  // namespace lts
