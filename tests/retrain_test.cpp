// Tests for the online retraining subsystem: OnlineTrainer trigger logic
// (periodic schedule, drift EWMA, cooldown), the champion/challenger
// holdout gate, failure/skip degradation, and the kModelRetrain stream
// policy end to end (including the kRetrainFail fault).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/online_trainer.hpp"
#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "exp/stream.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace lts {
namespace {

// One synthetic completion whose duration is an exact linear function of
// its Table-1 features, so a linear model can learn it (and a depth-1
// stump forest cannot).
core::TrainingRecord synth_record(Rng& rng) {
  core::TrainingRecord r;
  r.scenario_id = "synthetic";
  r.node = "node-1";
  r.telemetry.node = "node-1";
  r.telemetry.rtt_mean = rng.uniform(0.010, 0.080);
  r.telemetry.rtt_max = r.telemetry.rtt_mean * 2.0;
  r.telemetry.rtt_std = r.telemetry.rtt_mean * 0.4;
  r.telemetry.tx_rate = rng.uniform(5e6, 80e6);
  r.telemetry.rx_rate = rng.uniform(5e6, 80e6);
  r.telemetry.cpu_load = rng.uniform(0.2, 3.0);
  r.telemetry.mem_available = rng.uniform(2.0, 8.0) * 1024 * 1024 * 1024;
  r.config.app = spark::AppType::kJoin;
  r.config.input_records = rng.uniform_int(250000, 750000);
  r.config.executors = 4;
  r.config.executor_memory = 2.0 * 1024 * 1024 * 1024;
  r.duration = 20.0 + 900.0 * r.telemetry.rtt_mean +
               1.5 * r.telemetry.cpu_load +
               1e-5 * static_cast<double>(r.config.input_records);
  return r;
}

std::shared_ptr<const ml::Regressor> train_initial_linear(std::size_t n,
                                                          std::uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.set_feature_names(core::FeatureConstructor::feature_names());
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = synth_record(rng);
    data.add_row(core::FeatureConstructor::build(r.telemetry, r.config),
                 r.duration);
  }
  return std::shared_ptr<const ml::Regressor>(
      core::Trainer::train("linear", data));
}

core::RetrainOptions base_options() {
  core::RetrainOptions options;
  options.enabled = true;
  options.retrain_every = 10;
  options.window_size = 50;
  options.min_rows = 4;
  options.model_name = "linear";
  options.holdout_gate_slack = -1.0;  // every successful refit swaps
  return options;
}

// --------------------------------------------------------- OnlineTrainer ----

TEST(OnlineTrainer, PeriodicRefitSwapsAndBumpsVersion) {
  const auto initial = train_initial_linear(80, 21);
  core::OnlineTrainer trainer(base_options(), core::FeatureSet::kTable1,
                              initial);
  Rng rng(22);
  for (int i = 1; i <= 25; ++i) {
    const auto record = synth_record(rng);
    const auto event = trainer.on_completion(record, record.duration);
    if (i % 10 == 0) {
      ASSERT_TRUE(event.has_value()) << "completion " << i;
      EXPECT_EQ(event->outcome, core::RetrainOutcome::kSwapped);
      EXPECT_FALSE(event->drift_triggered);
    } else {
      EXPECT_FALSE(event.has_value()) << "completion " << i;
    }
  }
  EXPECT_EQ(trainer.model_version(), 2u);
  EXPECT_EQ(trainer.events().size(), 2u);
  EXPECT_NE(trainer.model().get(), initial.get());
  EXPECT_TRUE(trainer.model()->is_fitted());
  // Window is capped at window_size.
  EXPECT_EQ(trainer.window_rows(), 25u);
}

TEST(OnlineTrainer, SmallWindowSkipsAndKeepsServingModel) {
  auto options = base_options();
  options.retrain_every = 3;
  options.min_rows = 100;
  const auto initial = train_initial_linear(80, 31);
  core::OnlineTrainer trainer(options, core::FeatureSet::kTable1, initial);
  Rng rng(32);
  std::optional<core::RetrainEvent> event;
  for (int i = 0; i < 3; ++i) {
    event = trainer.on_completion(synth_record(rng), -1.0);
  }
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->outcome, core::RetrainOutcome::kSkipped);
  EXPECT_NE(event->detail.find("window too small"), std::string::npos);
  EXPECT_EQ(trainer.model_version(), 0u);
  EXPECT_EQ(trainer.model().get(), initial.get());
}

TEST(OnlineTrainer, DriftTriggerFiresAheadOfSchedule) {
  auto options = base_options();
  options.retrain_every = 1000;  // the schedule alone would never fire
  options.drift_threshold = 0.3;
  options.drift_ewma_alpha = 1.0;  // no smoothing: score = latest error
  options.drift_cooldown = 0;
  const auto initial = train_initial_linear(80, 41);
  core::OnlineTrainer trainer(options, core::FeatureSet::kTable1, initial);
  Rng rng(42);
  // Accurate predictions first: the drift score stays at zero.
  for (int i = 0; i < 6; ++i) {
    const auto record = synth_record(rng);
    EXPECT_FALSE(trainer.on_completion(record, record.duration).has_value());
  }
  EXPECT_DOUBLE_EQ(trainer.drift_score(), 0.0);
  // One badly mispredicted completion pushes the score over the threshold.
  const auto record = synth_record(rng);
  const auto event = trainer.on_completion(record, 2.5 * record.duration);
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(event->drift_triggered);
  EXPECT_GT(event->drift_score, 0.3);
  EXPECT_EQ(event->outcome, core::RetrainOutcome::kSwapped);
  EXPECT_EQ(trainer.model_version(), 1u);
  // A successful swap resets the drift history.
  EXPECT_DOUBLE_EQ(trainer.drift_score(), 0.0);
}

TEST(OnlineTrainer, UnusablePredictionsDoNotPolluteDriftScore) {
  auto options = base_options();
  options.drift_threshold = 0.3;
  const auto initial = train_initial_linear(80, 51);
  core::OnlineTrainer trainer(options, core::FeatureSet::kTable1, initial);
  Rng rng(52);
  for (int i = 0; i < 5; ++i) {
    // Fallback decisions (no prediction) and stale-demotion penalties must
    // both be excluded from the EWMA.
    trainer.on_completion(synth_record(rng), -1.0);
    trainer.on_completion(synth_record(rng), 5e9);
  }
  EXPECT_DOUBLE_EQ(trainer.drift_score(), 0.0);
}

TEST(OnlineTrainer, FailureHookKeepsPreviousModel) {
  auto options = base_options();
  options.retrain_every = 5;
  const auto initial = train_initial_linear(80, 61);
  core::OnlineTrainer trainer(options, core::FeatureSet::kTable1, initial);
  trainer.set_failure_hook([] { return true; });
  Rng rng(62);
  for (int i = 0; i < 10; ++i) {
    const auto record = synth_record(rng);
    trainer.on_completion(record, record.duration);
  }
  ASSERT_EQ(trainer.events().size(), 2u);
  for (const auto& event : trainer.events()) {
    EXPECT_EQ(event.outcome, core::RetrainOutcome::kFailed);
    EXPECT_NE(event.detail.find("previous model keeps serving"),
              std::string::npos);
  }
  EXPECT_EQ(trainer.model_version(), 0u);
  EXPECT_EQ(trainer.model().get(), initial.get());
}

TEST(OnlineTrainer, HoldoutGateRejectsWeakCandidate) {
  // The serving linear model fits the synthetic durations (they are linear
  // in the features); the refit candidate is a two-stump forest that
  // cannot. With the gate on, the weak candidate must be rejected.
  auto options = base_options();
  options.retrain_every = 30;
  options.window_size = 60;
  options.min_rows = 24;
  options.model_name = "random_forest";
  options.warm_start = false;
  options.holdout_fraction = 0.3;
  options.holdout_gate_slack = 0.0;
  Json weak = Json::object();
  weak["n_estimators"] = 2;
  weak["max_features"] = 1;
  Json tree = Json::object();
  tree["max_depth"] = 1;
  weak["tree"] = tree;
  options.params = weak;

  const auto initial = train_initial_linear(400, 71);
  core::OnlineTrainer gated(options, core::FeatureSet::kTable1, initial);
  Rng rng(72);
  std::optional<core::RetrainEvent> event;
  for (int i = 0; i < 30; ++i) {
    const auto record = synth_record(rng);
    event = gated.on_completion(record, record.duration);
  }
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->outcome, core::RetrainOutcome::kRejected);
  EXPECT_TRUE(std::isfinite(event->serving_rmse));
  EXPECT_GT(event->holdout_rmse, event->serving_rmse);
  EXPECT_EQ(gated.model_version(), 0u);
  EXPECT_EQ(gated.model().get(), initial.get());

  // The identical feed with the gate disabled swaps the weak candidate in:
  // the gate, not the trigger logic, is what protected the champion.
  options.holdout_gate_slack = -1.0;
  core::OnlineTrainer ungated(options, core::FeatureSet::kTable1, initial);
  Rng rng2(72);
  for (int i = 0; i < 30; ++i) {
    const auto record = synth_record(rng2);
    event = ungated.on_completion(record, record.duration);
  }
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->outcome, core::RetrainOutcome::kSwapped);
  EXPECT_EQ(ungated.model_version(), 1u);
}

TEST(OnlineTrainer, RetrainMetricsObserveDurationAndThroughput) {
  // Every attempt that reaches training — swapped and failed alike — must
  // land one observation in lts_retrain_duration_seconds, and successful
  // timing must publish a positive lts_train_rows_per_second.
  auto& registry = obs::MetricsRegistry::global();
  // Same boundaries as OnlineTrainer's registration: whichever side
  // registers first fixes them, and they must agree.
  auto& duration = obs::histogram(
      "lts_retrain_duration_seconds",
      {0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0});
  auto& rate = obs::gauge("lts_train_rows_per_second");
  registry.set_enabled(true);
  const auto count_before = duration.count();

  const auto initial = train_initial_linear(80, 91);
  core::OnlineTrainer trainer(base_options(), core::FeatureSet::kTable1,
                              initial);
  Rng rng(92);
  std::optional<core::RetrainEvent> event;
  for (int i = 0; i < 10; ++i) {
    const auto record = synth_record(rng);
    event = trainer.on_completion(record, record.duration);
  }
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->outcome, core::RetrainOutcome::kSwapped);
  EXPECT_EQ(duration.count(), count_before + 1);
  EXPECT_GT(rate.value(), 0.0);

  // The injected failure hook fires before training starts, so — like a
  // too-small-window skip — it must NOT land an observation: the histogram
  // only measures attempts that actually paid for training.
  trainer.set_failure_hook([] { return true; });
  for (int i = 0; i < 10; ++i) {
    const auto record = synth_record(rng);
    event = trainer.on_completion(record, record.duration);
  }
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->outcome, core::RetrainOutcome::kFailed);
  EXPECT_EQ(duration.count(), count_before + 1);
  registry.set_enabled(false);
}

// ---------------------------------------------------------------- stream ----

exp::StreamOptions small_stream_options() {
  exp::StreamOptions options;
  options.num_jobs = 15;
  options.mean_interarrival = 8.0;
  options.seed = 7;
  options.retrain.retrain_every = 5;
  options.retrain.min_rows = 4;
  options.retrain.window_size = 40;
  options.retrain.model_name = "linear";
  options.retrain.holdout_gate_slack = -1.0;
  return options;
}

std::shared_ptr<const ml::Regressor> small_stream_model(
    const std::vector<exp::Scenario>& matrix) {
  exp::CollectorOptions collect;
  collect.repeats = 1;
  const CsvTable log = exp::collect_training_data(matrix, collect);
  return std::shared_ptr<const ml::Regressor>(
      core::Trainer::train("linear", core::Trainer::dataset_from_log(log)));
}

TEST(StreamRetrain, CompletesAllJobsAndHotSwaps) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(8);
  const auto model = small_stream_model(matrix);
  const auto options = small_stream_options();
  const auto result = exp::run_job_stream(exp::StreamPolicy::kModelRetrain,
                                          model, matrix, options);
  ASSERT_EQ(result.jobs.size(), 15u);
  for (const auto& job : result.jobs) {
    EXPECT_GT(job.duration, 1.0);
    EXPECT_FALSE(job.driver_node.empty());
  }
  EXPECT_FALSE(result.retrain_events.empty());
  EXPECT_GE(result.model_version, 1u);
  ASSERT_NE(result.final_model, nullptr);
  EXPECT_TRUE(result.final_model->is_fitted());
  EXPECT_NE(result.final_model.get(), model.get());  // actually swapped

  // The kModel policy must ignore the retrain knobs entirely.
  const auto static_run = exp::run_job_stream(exp::StreamPolicy::kModel,
                                              model, matrix, options);
  EXPECT_TRUE(static_run.retrain_events.empty());
  EXPECT_EQ(static_run.model_version, 0u);
  EXPECT_EQ(static_run.final_model, nullptr);
}

TEST(StreamRetrain, JobPlanIsPolicyIndependent) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(8);
  const auto model = small_stream_model(matrix);
  const auto options = small_stream_options();
  const auto retrained = exp::run_job_stream(
      exp::StreamPolicy::kModelRetrain, model, matrix, options);
  const auto random = exp::run_job_stream(exp::StreamPolicy::kRandom,
                                          nullptr, matrix, options);
  ASSERT_EQ(retrained.jobs.size(), random.jobs.size());
  // The pre-drawn plan (which job arrives when) is policy-independent;
  // actual submit times may differ under contention because placement
  // retries depend on how earlier jobs were placed.
  for (std::size_t j = 0; j < retrained.jobs.size(); ++j) {
    EXPECT_EQ(retrained.jobs[j].scenario_id, random.jobs[j].scenario_id);
  }
}

TEST(StreamRetrain, RetrainFailFaultNeverInterruptsScheduling) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(8);
  const auto model = small_stream_model(matrix);
  auto options = small_stream_options();
  // Permanent (duration <= 0) training-pipeline outage from t=0.
  options.env.faults.push_back(
      {fault::FaultKind::kRetrainFail, "", 0.0, 0.0, 1.0});
  const auto result = exp::run_job_stream(exp::StreamPolicy::kModelRetrain,
                                          model, matrix, options);
  ASSERT_EQ(result.jobs.size(), 15u);
  for (const auto& job : result.jobs) EXPECT_GT(job.duration, 1.0);
  ASSERT_FALSE(result.retrain_events.empty());
  for (const auto& event : result.retrain_events) {
    EXPECT_EQ(event.outcome, core::RetrainOutcome::kFailed);
  }
  EXPECT_EQ(result.model_version, 0u);
  ASSERT_NE(result.final_model, nullptr);
  EXPECT_EQ(result.final_model.get(), model.get());  // never replaced
}

}  // namespace
}  // namespace lts
