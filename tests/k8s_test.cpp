// Unit tests for the Kubernetes layer: resource quantities, the API server,
// the default scheduler's filter/score plugins, and manifest rendering.
#include <gtest/gtest.h>

#include "k8s/api.hpp"
#include "k8s/manifest.hpp"
#include "k8s/resources.hpp"
#include "k8s/scheduler.hpp"

namespace lts::k8s {
namespace {

Resources gib(double cpu, double g) {
  return Resources{cpu, g * 1024 * 1024 * 1024};
}

// ---------------------------------------------------------- quantities ----

TEST(Quantities, CpuParsing) {
  EXPECT_DOUBLE_EQ(parse_cpu_quantity("500m"), 0.5);
  EXPECT_DOUBLE_EQ(parse_cpu_quantity("2"), 2.0);
  EXPECT_DOUBLE_EQ(parse_cpu_quantity("1.5"), 1.5);
  EXPECT_THROW(parse_cpu_quantity(""), Error);
  EXPECT_THROW(parse_cpu_quantity("abc"), Error);
}

TEST(Quantities, MemoryParsing) {
  EXPECT_DOUBLE_EQ(parse_memory_quantity("512Mi"), 512.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(parse_memory_quantity("2Gi"), 2.0 * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(parse_memory_quantity("1Ki"), 1024.0);
  EXPECT_DOUBLE_EQ(parse_memory_quantity("100"), 100.0);
  EXPECT_DOUBLE_EQ(parse_memory_quantity("1M"), 1e6);
  EXPECT_THROW(parse_memory_quantity("1Zi"), Error);
}

TEST(Quantities, FormattingRoundTrips) {
  EXPECT_EQ(format_cpu_quantity(0.5), "500m");
  EXPECT_EQ(format_cpu_quantity(2.0), "2");
  EXPECT_EQ(format_memory_quantity(2.0 * 1024 * 1024 * 1024), "2Gi");
  EXPECT_EQ(format_memory_quantity(512.0 * 1024 * 1024), "512Mi");
}

TEST(Resources, ArithmeticAndFit) {
  const Resources a{2.0, 100.0};
  const Resources b{1.0, 50.0};
  EXPECT_DOUBLE_EQ((a + b).cpu, 3.0);
  EXPECT_DOUBLE_EQ((a - b).memory, 50.0);
  EXPECT_TRUE(b.fits_within(a));
  EXPECT_FALSE(a.fits_within(b));
}

// ------------------------------------------------------------- api ----

TEST(ApiServer, BindTracksRequests) {
  ApiServer api;
  api.register_node("n1", gib(4, 8));
  PodSpec pod;
  pod.name = "p1";
  pod.requests = gib(1, 2);
  api.bind(pod, "n1");
  EXPECT_DOUBLE_EQ(api.node("n1").requested.cpu, 1.0);
  EXPECT_EQ(api.node("n1").pods.size(), 1u);
  EXPECT_TRUE(api.has_pod("p1"));
  EXPECT_EQ(api.pod_node("p1"), "n1");
}

TEST(ApiServer, RemoveReleasesRequests) {
  ApiServer api;
  api.register_node("n1", gib(4, 8));
  PodSpec pod;
  pod.name = "p1";
  pod.requests = gib(1, 2);
  api.bind(pod, "n1");
  api.remove_pod("p1");
  EXPECT_DOUBLE_EQ(api.node("n1").requested.cpu, 0.0);
  EXPECT_FALSE(api.has_pod("p1"));
  api.remove_pod("p1");  // idempotent
}

TEST(ApiServer, DuplicatePodOrNodeRejected) {
  ApiServer api;
  api.register_node("n1", gib(4, 8));
  EXPECT_THROW(api.register_node("n1", gib(4, 8)), Error);
  PodSpec pod;
  pod.name = "p1";
  api.bind(pod, "n1");
  EXPECT_THROW(api.bind(pod, "n1"), Error);
  PodSpec orphan;
  orphan.name = "p2";
  EXPECT_THROW(api.bind(orphan, "nope"), Error);
}

// -------------------------------------------------------- filters ----

TEST(Filters, NodeResourcesFit) {
  ApiServer api;
  api.register_node("n1", gib(2, 4));
  PodSpec big;
  big.requests = gib(3, 1);
  PodSpec fits;
  fits.requests = gib(2, 4);
  NodeResourcesFitFilter filter;
  EXPECT_FALSE(filter.filter(big, api.node("n1")).empty());
  EXPECT_TRUE(filter.filter(fits, api.node("n1")).empty());
  // Occupy some and retry.
  PodSpec half;
  half.name = "h";
  half.requests = gib(1, 2);
  api.bind(half, "n1");
  EXPECT_FALSE(filter.filter(fits, api.node("n1")).empty());
}

TEST(Filters, NodeAffinity) {
  ApiServer api;
  api.register_node("n1", gib(2, 4));
  NodeAffinityFilter filter;
  PodSpec anywhere;
  EXPECT_TRUE(filter.filter(anywhere, api.node("n1")).empty());
  PodSpec pinned;
  pinned.node_affinity = NodeAffinity{{"n2"}};
  EXPECT_FALSE(filter.filter(pinned, api.node("n1")).empty());
  pinned.node_affinity = NodeAffinity{{"n1", "n2"}};
  EXPECT_TRUE(filter.filter(pinned, api.node("n1")).empty());
}

TEST(Filters, TaintToleration) {
  ApiServer api;
  api.register_node("tainted", gib(2, 4), {},
                    {Taint{"dedicated", "gpu", TaintEffect::kNoSchedule}});
  api.register_node("soft", gib(2, 4), {},
                    {Taint{"pref", "", TaintEffect::kPreferNoSchedule}});
  TaintTolerationFilter filter;
  PodSpec plain;
  EXPECT_FALSE(filter.filter(plain, api.node("tainted")).empty());
  // PreferNoSchedule does not filter.
  EXPECT_TRUE(filter.filter(plain, api.node("soft")).empty());
  PodSpec tolerant;
  tolerant.tolerations = {Toleration{"dedicated", "gpu"}};
  EXPECT_TRUE(filter.filter(tolerant, api.node("tainted")).empty());
  PodSpec tolerate_all;
  tolerate_all.tolerations = {Toleration{"", ""}};
  EXPECT_TRUE(filter.filter(tolerate_all, api.node("tainted")).empty());
}

// --------------------------------------------------------- scoring ----

TEST(Scores, LeastAllocatedPrefersEmptyNode) {
  ApiServer api;
  api.register_node("empty", gib(4, 8));
  api.register_node("busy", gib(4, 8));
  PodSpec occupant;
  occupant.name = "o";
  occupant.requests = gib(2, 4);
  api.bind(occupant, "busy");
  LeastAllocatedScore score;
  PodSpec pod;
  pod.requests = gib(1, 1);
  EXPECT_GT(score.score(pod, api.node("empty")),
            score.score(pod, api.node("busy")));
}

TEST(Scores, BalancedAllocationPrefersEvenUsage) {
  ApiServer api;
  api.register_node("n", gib(4, 8));
  BalancedAllocationScore score;
  PodSpec balanced;
  balanced.requests = gib(2, 4);  // 50% cpu, 50% mem
  PodSpec skewed;
  skewed.requests = gib(4, 1);  // 100% cpu, 12.5% mem
  EXPECT_GT(score.score(balanced, api.node("n")),
            score.score(skewed, api.node("n")));
}

TEST(Scores, TaintTolerationPenalizesSoftTaints) {
  ApiServer api;
  api.register_node("soft", gib(2, 4), {},
                    {Taint{"pref", "", TaintEffect::kPreferNoSchedule}});
  api.register_node("clean", gib(2, 4));
  TaintTolerationScore score;
  PodSpec pod;
  EXPECT_GT(score.score(pod, api.node("clean")),
            score.score(pod, api.node("soft")));
}

// ------------------------------------------------------- scheduler ----

TEST(DefaultScheduler, PicksLeastLoadedNode) {
  ApiServer api;
  api.register_node("a", gib(4, 8));
  api.register_node("b", gib(4, 8));
  PodSpec occupant;
  occupant.name = "o";
  occupant.requests = gib(3, 6);
  api.bind(occupant, "a");
  DefaultScheduler scheduler(api, 1);
  PodSpec pod;
  pod.name = "p";
  pod.requests = gib(1, 1);
  const auto result = scheduler.schedule(pod);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.selected(), "b");
  EXPECT_EQ(result.ranking.size(), 2u);
}

TEST(DefaultScheduler, FullRankingAndRejections) {
  ApiServer api;
  api.register_node("a", gib(4, 8));
  api.register_node("tiny", gib(0.5, 8));
  api.register_node("b", gib(4, 8));
  DefaultScheduler scheduler(api, 1);
  PodSpec pod;
  pod.requests = gib(1, 1);
  const auto result = scheduler.schedule(pod);
  EXPECT_EQ(result.ranking.size(), 2u);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0].first, "tiny");
  EXPECT_EQ(result.rejected[0].second, "insufficient cpu");
}

TEST(DefaultScheduler, InfeasibleEverywhere) {
  ApiServer api;
  api.register_node("a", gib(1, 1));
  DefaultScheduler scheduler(api, 1);
  PodSpec pod;
  pod.requests = gib(8, 8);
  const auto result = scheduler.schedule(pod);
  EXPECT_FALSE(result.feasible());
  EXPECT_THROW(result.selected(), Error);
}

TEST(DefaultScheduler, AffinityForcesNode) {
  ApiServer api;
  api.register_node("a", gib(4, 8));
  api.register_node("b", gib(4, 8));
  DefaultScheduler scheduler(api, 1);
  PodSpec pod;
  pod.requests = gib(1, 1);
  pod.node_affinity = NodeAffinity{{"b"}};
  EXPECT_EQ(scheduler.schedule(pod).selected(), "b");
}

TEST(DefaultScheduler, TieBreakIsSeededDeterministic) {
  auto pick = [](std::uint64_t seed) {
    ApiServer api;
    for (int i = 0; i < 6; ++i) {
      api.register_node("n" + std::to_string(i), gib(4, 8));
    }
    DefaultScheduler scheduler(api, seed);
    PodSpec pod;
    pod.requests = gib(1, 1);
    return scheduler.schedule(pod).selected();
  };
  EXPECT_EQ(pick(7), pick(7));
  // Different seeds should eventually pick different nodes among ties.
  bool differs = false;
  for (std::uint64_t s = 0; s < 10 && !differs; ++s) {
    differs = pick(s) != pick(s + 100);
  }
  EXPECT_TRUE(differs);
}

TEST(DefaultScheduler, IsNetworkBlind) {
  // The core property the paper exploits: identical requests => identical
  // treatment, regardless of any network state (which the scheduler cannot
  // even observe through the ApiServer interface).
  ApiServer api;
  api.register_node("quiet", gib(4, 8));
  api.register_node("congested", gib(4, 8));
  DefaultScheduler scheduler(api, 3);
  PodSpec pod;
  pod.requests = gib(1, 1);
  const auto result = scheduler.schedule(pod);
  EXPECT_DOUBLE_EQ(result.ranking[0].score, result.ranking[1].score);
}

// -------------------------------------------------------- manifest ----

TEST(Manifest, RendersNodeAffinity) {
  SparkJobManifestSpec spec;
  spec.job_name = "sort-test";
  spec.app_type = "sort";
  spec.input_records = 100000;
  spec.executors = 3;
  spec.driver_requests = gib(1, 1);
  spec.executor_requests = gib(1, 1);
  spec.pinned_node = "node-4";
  const std::string yaml = render_spark_job_manifest(spec);
  EXPECT_NE(yaml.find("kind: SparkApplication"), std::string::npos);
  EXPECT_NE(yaml.find("kubernetes.io/hostname"), std::string::npos);
  const auto values = parse_manifest_node_affinity(yaml);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "node-4");
}

TEST(Manifest, UnpinnedHasNoAffinity) {
  SparkJobManifestSpec spec;
  spec.job_name = "x";
  spec.app_type = "join";
  spec.driver_requests = gib(1, 1);
  spec.executor_requests = gib(1, 1);
  const std::string yaml = render_spark_job_manifest(spec);
  EXPECT_EQ(yaml.find("nodeAffinity"), std::string::npos);
  EXPECT_TRUE(parse_manifest_node_affinity(yaml).empty());
}

TEST(Manifest, ConfEntriesSortedAndQuoted) {
  SparkJobManifestSpec spec;
  spec.job_name = "x";
  spec.app_type = "sort";
  spec.driver_requests = gib(1, 1);
  spec.executor_requests = gib(1, 1);
  spec.extra_conf["zzz"] = "2";
  spec.extra_conf["aaa"] = "1";
  const std::string yaml = render_spark_job_manifest(spec);
  EXPECT_LT(yaml.find("\"aaa\""), yaml.find("\"zzz\""));
}

}  // namespace
}  // namespace lts::k8s

// ------------------------------------------- anti-affinity + spreading ----

namespace lts::k8s {
namespace {

Resources gib2(double cpu, double g) {
  return Resources{cpu, g * 1024 * 1024 * 1024};
}

TEST(AntiAffinity, PenalizesCoLocation) {
  ApiServer api;
  api.register_node("a", gib2(8, 16));
  api.register_node("b", gib2(8, 16));
  PodSpec first;
  first.name = "job-exec-1";
  first.labels["app"] = "job";
  api.bind(first, "a");

  PodAntiAffinityScore score(api);
  PodSpec second;
  second.labels["app"] = "job";
  second.anti_affinity = PodAntiAffinity{"app", "job", 1.0};
  EXPECT_LT(score.score(second, api.node("a")),
            score.score(second, api.node("b")));
  // Without the rule, no penalty anywhere.
  PodSpec plain;
  EXPECT_DOUBLE_EQ(score.score(plain, api.node("a")), 100.0);
}

TEST(AntiAffinity, SchedulerSpreadsExecutorsWithPlugin) {
  ApiServer api;
  for (int i = 0; i < 3; ++i) {
    api.register_node("n" + std::to_string(i), gib2(16, 32));
  }
  DefaultScheduler scheduler = DefaultScheduler::bare(api, 1);
  scheduler.add_filter(std::make_unique<NodeResourcesFitFilter>());
  scheduler.add_score(std::make_unique<PodAntiAffinityScore>(api), 1.0);
  // Bind five executors sequentially: they must round-robin the nodes.
  std::map<std::string, int> per_node;
  for (int e = 0; e < 6; ++e) {
    PodSpec pod;
    pod.name = "exec-" + std::to_string(e);
    pod.requests = gib2(1, 1);
    pod.labels["app"] = "job";
    pod.anti_affinity = PodAntiAffinity{"app", "job", 1.0};
    const auto where = scheduler.schedule(pod);
    api.bind(pod, where.selected());
    ++per_node[where.selected()];
  }
  for (const auto& [node, count] : per_node) {
    EXPECT_EQ(count, 2) << node;
  }
}

TEST(TopologySpread, EvensAcrossZones) {
  ApiServer api;
  api.register_node("a1", gib2(8, 16), {{"topology.kubernetes.io/zone", "A"}});
  api.register_node("a2", gib2(8, 16), {{"topology.kubernetes.io/zone", "A"}});
  api.register_node("b1", gib2(8, 16), {{"topology.kubernetes.io/zone", "B"}});
  // Zone A already hosts two matching pods (one per node).
  for (const char* node : {"a1", "a2"}) {
    PodSpec p;
    p.name = std::string("seed-") + node;
    p.labels["app"] = "job";
    api.bind(p, node);
  }
  TopologySpreadScore score(api);
  PodSpec pod;
  pod.anti_affinity = PodAntiAffinity{"app", "job", 1.0};
  EXPECT_GT(score.score(pod, api.node("b1")),
            score.score(pod, api.node("a1")));
  // Node without a zone label is neutral.
  api.register_node("nozone", gib2(8, 16));
  EXPECT_DOUBLE_EQ(score.score(pod, api.node("nozone")), 100.0);
}

TEST(ApiServer, CountsPodsWithLabel) {
  ApiServer api;
  api.register_node("n", gib2(8, 16));
  PodSpec labeled;
  labeled.name = "p1";
  labeled.labels["role"] = "x";
  api.bind(labeled, "n");
  PodSpec other;
  other.name = "p2";
  other.labels["role"] = "y";
  api.bind(other, "n");
  EXPECT_EQ(api.count_pods_with_label("n", "role", "x"), 1);
  EXPECT_EQ(api.count_pods_with_label("n", "role", "z"), 0);
  api.remove_pod("p1");
  EXPECT_EQ(api.count_pods_with_label("n", "role", "x"), 0);
}

}  // namespace
}  // namespace lts::k8s
