// Tests for the §8 extension components: rich telemetry metrics, the rich
// feature set, scaled cluster topologies, and the live job-stream runner.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "core/features.hpp"
#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "exp/stream.hpp"
#include "telemetry/exporters.hpp"

namespace lts {
namespace {

// -------------------------------------------------------- rich metrics ----

TEST(RichTelemetry, ExportersEmitRichSeries) {
  exp::SimEnv env(118);
  env.warmup();
  for (const auto& name : env.node_names()) {
    const telemetry::Labels labels{{"node", name}};
    EXPECT_TRUE(env.tsdb()
                    .latest(telemetry::kUplinkUtilMetric, labels)
                    .has_value())
        << name;
    EXPECT_TRUE(env.tsdb()
                    .latest(telemetry::kQueueDelayMetric, labels)
                    .has_value());
    EXPECT_TRUE(env.tsdb()
                    .latest(telemetry::kActiveFlowsMetric, labels)
                    .has_value());
  }
}

TEST(RichTelemetry, SnapshotReflectsBackgroundTraffic) {
  exp::EnvOptions options;
  options.min_background_pods = 3;
  options.max_background_pods = 3;
  exp::SimEnv env(7, options);
  env.warmup();
  const auto snapshot = env.snapshot();
  double max_up = 0.0, max_flows = 0.0;
  for (const auto& node : snapshot.nodes) {
    EXPECT_GE(node.uplink_util, 0.0);
    EXPECT_LE(node.uplink_util, 1.0);
    max_up = std::max(max_up, std::max(node.uplink_util,
                                       node.downlink_util));
    max_flows = std::max(max_flows, node.active_flows);
  }
  EXPECT_GT(max_up, 0.02);     // some node carries the bg fetches
  EXPECT_GT(max_flows, 0.05);  // averaged flow count is nonzero somewhere
}

TEST(RichTelemetry, DisabledExporterEmitsNothing) {
  exp::EnvOptions options;
  options.exporter.rich_metrics = false;
  exp::SimEnv env(7, options);
  env.warmup();
  const telemetry::Labels labels{{"node", "node-1"}};
  EXPECT_FALSE(env.tsdb()
                   .latest(telemetry::kUplinkUtilMetric, labels)
                   .has_value());
  // The snapshot still builds, with zeros.
  const auto snapshot = env.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.nodes[0].uplink_util, 0.0);
}

// ------------------------------------------------------- rich features ----

TEST(RichFeatures, SchemaExtendsTable1) {
  const auto& base =
      core::FeatureConstructor::feature_names(core::FeatureSet::kTable1);
  const auto& rich =
      core::FeatureConstructor::feature_names(core::FeatureSet::kRich);
  ASSERT_EQ(rich.size(), base.size() + 4);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(rich[i], base[i]);  // strict prefix: models stay comparable
  }
}

TEST(RichFeatures, ValuesLandInRichSlots) {
  telemetry::NodeTelemetry t;
  t.node = "n";
  t.uplink_util = 0.4;
  t.downlink_util = 0.7;
  t.queue_delay = 0.002;
  t.active_flows = 5.0;
  spark::JobConfig config;
  const auto x =
      core::FeatureConstructor::build(t, config, core::FeatureSet::kRich);
  const auto& names =
      core::FeatureConstructor::feature_names(core::FeatureSet::kRich);
  auto at = [&](const std::string& name) {
    return x[static_cast<std::size_t>(
        std::find(names.begin(), names.end(), name) - names.begin())];
  };
  EXPECT_DOUBLE_EQ(at("uplink_util"), 0.4);
  EXPECT_DOUBLE_EQ(at("downlink_util"), 0.7);
  EXPECT_DOUBLE_EQ(at("queue_delay_ms"), 2.0);
  EXPECT_DOUBLE_EQ(at("active_flows"), 5.0);
}

TEST(RichFeatures, DatasetFromLogCarriesRichColumns) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(1);
  exp::CollectorOptions options;
  options.repeats = 1;
  const CsvTable log = exp::collect_training_data(matrix, options);
  const auto rich =
      core::Trainer::dataset_from_log(log, core::FeatureSet::kRich);
  EXPECT_EQ(rich.num_features(),
            core::FeatureConstructor::num_features(core::FeatureSet::kRich));
  const auto base = core::Trainer::dataset_from_log(log);
  EXPECT_EQ(base.num_features(),
            core::FeatureConstructor::num_features());
  EXPECT_EQ(base.size(), rich.size());
}

TEST(RichFeatures, LegacyLogsWithoutRichColumnsStillParse) {
  // Simulate an old-schema CSV by dropping the rich columns.
  core::TrainingLogger logger;
  core::TrainingRecord r;
  r.scenario_id = "s";
  r.node = "node-1";
  r.telemetry.node = "node-1";
  r.config.executors = 2;
  r.duration = 10.0;
  logger.log(r);
  CsvTable legacy(
      {"scenario", "node", "snapshot_time", "rtt_mean", "rtt_max", "rtt_std",
       "tx_rate", "rx_rate", "cpu_load", "mem_available", "app",
       "input_records", "executors", "executor_memory", "shuffle_partitions",
       "iterations", "join_skew", "duration", "shuffle_bytes",
       "max_spill_penalty"});
  legacy.add_row({"s", "node-1", "40", "0.03", "0.07", "0.02", "1e6", "2e6",
                  "0.5", "7e9", "sort", "100000", "2", "1e9", "8", "3",
                  "1.3", "12.5", "1e8", "1.0"});
  const auto parsed = core::TrainingLogger::parse_row(legacy, 0);
  EXPECT_DOUBLE_EQ(parsed.telemetry.uplink_util, 0.0);
  EXPECT_DOUBLE_EQ(parsed.duration, 12.5);
}

// -------------------------------------------------------- scaled spec ----

TEST(ScaledCluster, BuildsRequestedShape) {
  const auto spec = exp::scaled_cluster_spec(4, 3);
  ASSERT_EQ(spec.sites.size(), 4u);
  for (const auto& site : spec.sites) {
    EXPECT_EQ(site.node_names.size(), 3u);
  }
  EXPECT_EQ(spec.wan_links.size(), 6u);  // full mesh of 4

  exp::EnvOptions options;
  options.cluster_spec = spec;
  exp::SimEnv env(1, options);
  EXPECT_EQ(env.node_names().size(), 12u);
  env.warmup();
  const auto snapshot = env.snapshot();
  EXPECT_EQ(snapshot.nodes.size(), 12u);
  for (const auto& node : snapshot.nodes) {
    EXPECT_GT(node.rtt_mean, 0.0);
  }
}

TEST(ScaledCluster, DistanceGrowsWithSiteIndex) {
  const auto spec = exp::scaled_cluster_spec(5, 1);
  exp::EnvOptions options;
  options.cluster_spec = spec;
  options.max_node_extra_delay = 0.0;  // isolate the WAN structure
  exp::SimEnv env(1, options);
  const auto& flows = env.cluster().flows();
  const SimTime near = flows.base_rtt(env.cluster().node(0).vertex(),
                                      env.cluster().node(1).vertex());
  const SimTime far = flows.base_rtt(env.cluster().node(0).vertex(),
                                     env.cluster().node(4).vertex());
  EXPECT_LT(near, far);
}

TEST(ScaledCluster, JobsRunAtLargerScale) {
  exp::EnvOptions options;
  options.cluster_spec = exp::scaled_cluster_spec(4, 3);
  exp::SimEnv env(9, options);
  env.warmup();
  spark::JobConfig job;
  job.executors = 6;
  const auto result = env.run_job(job, 7, 3);
  EXPECT_TRUE(result.completed);
}

TEST(ScaledCluster, RejectsDegenerateShapes) {
  EXPECT_THROW(exp::scaled_cluster_spec(0, 2), Error);
  EXPECT_THROW(exp::scaled_cluster_spec(2, 0), Error);
}

TEST(ScaledCluster, RejectsOutOfBoundParameters) {
  // Inputs outside the paper-scale envelope are rejected loudly, not
  // clamped — the flow model's constants are meaningless out there.
  const auto message_of = [](exp::ScaledClusterOptions o) -> std::string {
    try {
      exp::scaled_cluster_spec(o);
    } catch (const Error& e) {
      return e.what();
    }
    return "";
  };
  exp::ScaledClusterOptions o;
  o.sites = 513;
  EXPECT_NE(message_of(o).find("sites must be in [1, 512]"),
            std::string::npos);
  o = {};
  o.nodes_per_site = 5000;
  EXPECT_NE(message_of(o).find("nodes_per_site"), std::string::npos);
  o = {};
  o.sites = 512;
  o.nodes_per_site = 4096;  // 2M nodes: each knob legal, product absurd
  EXPECT_NE(message_of(o).find("total nodes"), std::string::npos);
  o = {};
  o.access_capacity_bps = 1e3;  // 1 kbps NIC
  EXPECT_NE(message_of(o).find("access_capacity_bps"), std::string::npos);
  o = {};
  o.wan_capacity_bps = 1e12;  // 8 Tbps circuit
  EXPECT_NE(message_of(o).find("wan_capacity_bps"), std::string::npos);
  o = {};
  o.rtt_max = 2.0;  // two-second planet
  EXPECT_NE(message_of(o).find("rtt_max"), std::string::npos);
  o = {};
  o.rtt_base = 0.5;  // exceeds the default rtt_max
  EXPECT_NE(message_of(o).find("rtt_base"), std::string::npos);
  o = {};
  o.nic_speed_tiers = {0.001};
  EXPECT_NE(message_of(o).find("nic_speed_tiers"), std::string::npos);
  o = {};
  o.nic_jitter = 0.75;
  EXPECT_NE(message_of(o).find("nic_jitter"), std::string::npos);
  o = {};
  o.core_oversubscription = -1.0;
  EXPECT_NE(message_of(o).find("core_oversubscription"), std::string::npos);
}

TEST(ScaledCluster, HeterogeneousNicsProduceDistinctCapacities) {
  exp::ScaledClusterOptions o;
  o.sites = 2;
  o.nodes_per_site = 4;
  o.nic_speed_tiers = {0.5, 1.0, 2.0};
  o.nic_jitter = 0.2;
  const auto spec = exp::scaled_cluster_spec(o);
  ASSERT_EQ(spec.node_access_capacity.size(), 8u);
  for (const Rate cap : spec.node_access_capacity) EXPECT_GT(cap, 0.0);
  // Tiers cycle with period 3 over 8 nodes and jitter perturbs each node
  // independently, so no two consecutive nodes may tie.
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NE(spec.node_access_capacity[i], spec.node_access_capacity[i - 1]);
  }
  // Determinism: the same options reproduce the same capacities bit-for-bit.
  const auto again = exp::scaled_cluster_spec(o);
  EXPECT_EQ(again.node_access_capacity, spec.node_access_capacity);

  // The cluster applies the overrides to the actual access links.
  sim::Engine engine;
  cluster::Cluster cl(engine, spec);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(cl.topology().link(cl.node_uplink(i)).capacity,
              spec.node_access_capacity[i])
        << "node " << i;
  }
}

TEST(ScaledCluster, OversubscribedCoreRoutesAllSitePairs) {
  exp::ScaledClusterOptions o;
  o.sites = 5;
  o.nodes_per_site = 2;
  o.core_oversubscription = 4.0;
  const auto spec = exp::scaled_cluster_spec(o);
  EXPECT_TRUE(spec.wan_links.empty());
  ASSERT_EQ(spec.site_core_delay.size(), 5u);
  // Trunk = site aggregate NIC rate / oversubscription.
  EXPECT_DOUBLE_EQ(spec.core_capacity_bps, 2 * o.access_capacity_bps / 4.0);

  sim::Engine engine;
  cluster::Cluster cl(engine, spec);
  auto& flows = cl.flows();
  // Every cross-site pair is reachable through the core, RTT grows with
  // site distance, and no pair exceeds rtt_max (plus the small access legs).
  const SimTime near = flows.base_rtt(cl.node(0).vertex(),
                                      cl.node(2).vertex());
  const SimTime far = flows.base_rtt(cl.node(0).vertex(),
                                     cl.node(8).vertex());
  EXPECT_GT(near, 0.0);
  EXPECT_LT(near, far);
  EXPECT_LE(far, o.rtt_max + 4 * spec.access_delay + 1e-9);
}

TEST(ScaledCluster, HierarchicalFlagSelectsSolver) {
  exp::ScaledClusterOptions o;
  o.hierarchical_solver = true;
  const auto spec = exp::scaled_cluster_spec(o);
  EXPECT_EQ(spec.flow_options.solver, net::SolverMode::kHierarchical);
  EXPECT_EQ(exp::scaled_cluster_spec(3, 2).flow_options.solver,
            net::SolverMode::kFlat);
}

// ------------------------------------------------------------- stream ----

TEST(Stream, RunsAllJobsUnderEveryPolicy) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(8);
  // A small model for kModel.
  exp::CollectorOptions collect;
  collect.repeats = 1;
  const CsvTable log = exp::collect_training_data(matrix, collect);
  const auto model = std::shared_ptr<const ml::Regressor>(
      core::Trainer::train("linear", core::Trainer::dataset_from_log(log)));

  exp::StreamOptions options;
  options.num_jobs = 6;
  options.mean_interarrival = 8.0;
  options.seed = 5;
  for (const auto policy : {exp::StreamPolicy::kModel,
                            exp::StreamPolicy::kKubeDefault,
                            exp::StreamPolicy::kRandom}) {
    const auto result = exp::run_job_stream(policy, model, matrix, options);
    ASSERT_EQ(result.jobs.size(), 6u);
    for (const auto& job : result.jobs) {
      EXPECT_GT(job.duration, 1.0);
      EXPECT_FALSE(job.driver_node.empty());
      EXPECT_FALSE(job.scenario_id.empty());
    }
    EXPECT_GT(result.makespan, 0.0);
  }
}

TEST(Stream, JobSequenceIdenticalAcrossPolicies) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(8);
  exp::StreamOptions options;
  options.num_jobs = 5;
  options.seed = 11;
  const auto a =
      exp::run_job_stream(exp::StreamPolicy::kRandom, nullptr, matrix,
                          options);
  const auto b =
      exp::run_job_stream(exp::StreamPolicy::kKubeDefault, nullptr, matrix,
                          options);
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].scenario_id, b.jobs[j].scenario_id);
  }
}

TEST(Stream, DeterministicForSeed) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(8);
  exp::StreamOptions options;
  options.num_jobs = 5;
  options.seed = 13;
  const auto a = exp::run_job_stream(exp::StreamPolicy::kRandom, nullptr,
                                     matrix, options);
  const auto b = exp::run_job_stream(exp::StreamPolicy::kRandom, nullptr,
                                     matrix, options);
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_DOUBLE_EQ(a.jobs[j].duration, b.jobs[j].duration);
  }
}

TEST(Stream, BackloggedStreamAccountsQueueingRetriesAndMakespan) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(8);
  exp::StreamOptions options;
  options.num_jobs = 12;
  options.mean_interarrival = 0.5;  // far above testbed capacity
  options.seed = 17;
  const auto result = exp::run_job_stream(exp::StreamPolicy::kKubeDefault,
                                          nullptr, matrix, options);
  ASSERT_EQ(result.jobs.size(), 12u);
  int total_retries = 0;
  int delayed = 0;
  SimTime first_submit = result.jobs.front().submitted;
  SimTime last_finish = 0.0;
  for (const auto& job : result.jobs) {
    EXPECT_GE(job.submitted, job.planned_arrival);
    EXPECT_DOUBLE_EQ(job.queueing_delay, job.submitted - job.planned_arrival);
    total_retries += job.placement_retries;
    if (job.queueing_delay > 0.0) ++delayed;
    first_submit = std::min(first_submit, job.submitted);
    last_finish = std::max(last_finish, job.submitted + job.duration);
  }
  // Twelve jobs half a second apart must backlog the 6-node testbed: some
  // placements defer and wait. The makespan check pins the corrected
  // accounting — last completion minus first *actual* submission, so
  // queueing delay ahead of the first submit is reported per job, never
  // silently absorbed into the makespan.
  EXPECT_GT(total_retries, 0);
  EXPECT_GT(delayed, 0);
  EXPECT_DOUBLE_EQ(result.makespan, last_finish - first_submit);
}

TEST(Stream, BoundedRetryFailsLoudlyNamingJobAndRejections) {
  // One permanently-infeasible job: no node has 64 cores. The stream must
  // fail after the configured number of deferrals with a message naming the
  // job, its config, and per-node rejection reasons — not spin until the
  // opaque drain guard kills the run.
  std::vector<exp::Scenario> matrix(1);
  matrix[0].id = "sort-huge";
  matrix[0].config.executors = 2;
  matrix[0].config.executor_cores = 64.0;
  exp::StreamOptions options;
  options.num_jobs = 1;
  options.seed = 3;
  options.max_placement_retries = 3;
  try {
    exp::run_job_stream(exp::StreamPolicy::kKubeDefault, nullptr, matrix,
                        options);
    FAIL() << "infeasible job must fail the stream";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("job 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sort-huge"), std::string::npos) << msg;
    EXPECT_NE(msg.find("after 3 retries"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rejections of the last attempt"), std::string::npos)
        << msg;
  }
}

TEST(Stream, ModelPolicyRequiresFittedModel) {
  const auto matrix = exp::paper_scenario_matrix();
  exp::StreamOptions options;
  EXPECT_THROW(exp::run_job_stream(exp::StreamPolicy::kModel, nullptr,
                                   matrix, options),
               Error);
}

TEST(Stream, ResidualJobCollectorMatchesSchema) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(1);
  exp::CollectorOptions options;
  options.repeats = 1;
  options.residual_job = true;
  const CsvTable log = exp::collect_training_data(matrix, options);
  EXPECT_EQ(log.num_rows(), 6u);
  // Residual traffic should leave fingerprints in some node's rate columns.
  double max_rate = 0.0;
  for (std::size_t i = 0; i < log.num_rows(); ++i) {
    max_rate = std::max(max_rate, log.cell_double(i, "tx_rate"));
    max_rate = std::max(max_rate, log.cell_double(i, "rx_rate"));
  }
  EXPECT_GT(max_rate, 1e6);
}

}  // namespace
}  // namespace lts
