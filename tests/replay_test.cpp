// Golden end-to-end replay: a fixed-seed scenario's full decision trace and
// final metrics, compared byte-for-byte against a checked-in golden file.
//
// The default configuration (no faults, no degradation policies) must keep
// producing exactly the same simulated world: same telemetry snapshot after
// warmup, same default-scheduler ranking, same per-job placements and
// completion times. Any unintended behavioral drift — an extra Rng draw, a
// reordered event, a changed constant — shows up here as a one-line diff
// long before it would be noticed in aggregate experiment statistics.
//
// To regenerate after an *intended* behavior change:
//   LTS_UPDATE_GOLDEN=1 ./replay_test
// and commit the updated tests/golden/replay_golden.json with the change
// that caused it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "exp/stream.hpp"
#include "util/json.hpp"

namespace lts {
namespace {

constexpr std::uint64_t kSeed = 4242;

std::string golden_path() {
  return std::string(LTS_SOURCE_DIR) + "/golden/replay_golden.json";
}

Json snapshot_to_json(const telemetry::ClusterSnapshot& snapshot) {
  Json j = Json::object();
  j["at"] = snapshot.at;
  Json nodes = Json::array();
  for (const auto& n : snapshot.nodes) {
    Json row = Json::object();
    row["node"] = n.node;
    row["rtt_mean"] = n.rtt_mean;
    row["rtt_max"] = n.rtt_max;
    row["rtt_std"] = n.rtt_std;
    row["tx_rate"] = n.tx_rate;
    row["rx_rate"] = n.rx_rate;
    row["cpu_load"] = n.cpu_load;
    row["mem_available"] = n.mem_available;
    row["uplink_util"] = n.uplink_util;
    row["downlink_util"] = n.downlink_util;
    row["queue_delay"] = n.queue_delay;
    row["active_flows"] = n.active_flows;
    row["last_seen"] = n.last_seen;
    row["has_data"] = n.has_data;
    nodes.push_back(row);
  }
  j["nodes"] = nodes;
  return j;
}

Json stream_to_json(const exp::StreamResult& run) {
  Json j = Json::object();
  Json jobs = Json::array();
  for (const auto& job : run.jobs) {
    Json row = Json::object();
    row["scenario"] = job.scenario_id;
    row["driver_node"] = job.driver_node;
    row["submitted"] = job.submitted;
    row["duration"] = job.duration;
    jobs.push_back(row);
  }
  j["jobs"] = jobs;
  j["makespan"] = run.makespan;
  return j;
}

/// The replay record: everything below is a pure function of kSeed under the
/// default configuration.
Json build_replay_record() {
  const auto matrix = exp::paper_scenario_matrix();
  Json record = Json::object();
  record["seed"] = static_cast<double>(kSeed);

  // World state at warmup time + the default kube scheduler's view of it.
  {
    exp::SimEnv env(kSeed, {});
    env.warmup();
    record["snapshot"] = snapshot_to_json(env.snapshot());
    const auto kube = env.kube_ranking(matrix.front().config);
    Json ranking = Json::array();
    for (const auto& scored : kube.ranking) ranking.push_back(scored.name);
    record["kube_ranking"] = ranking;
  }

  // Two live streams (placement decisions + completion times) under the two
  // model-free policies; together they exercise engine, network, cluster,
  // telemetry, kube scheduling, and the Spark runtime end to end.
  exp::StreamOptions stream;
  stream.num_jobs = 8;
  stream.seed = kSeed;
  record["stream_kube"] = stream_to_json(exp::run_job_stream(
      exp::StreamPolicy::kKubeDefault, nullptr, matrix, stream));
  record["stream_random"] = stream_to_json(exp::run_job_stream(
      exp::StreamPolicy::kRandom, nullptr, matrix, stream));
  return record;
}

TEST(GoldenReplay, DefaultConfigMatchesCheckedInTrace) {
  const std::string actual = build_replay_record().dump(2) + "\n";

  if (std::getenv("LTS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good())
      << "missing golden file " << golden_path()
      << " — run with LTS_UPDATE_GOLDEN=1 to create it";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();

  // Byte-identical, including float formatting (%.17g round-trips exactly).
  EXPECT_EQ(actual, expected)
      << "default-config replay diverged from the golden trace; if this "
         "change in behavior is intended, regenerate with "
         "LTS_UPDATE_GOLDEN=1 and commit the new golden file";
}

TEST(GoldenReplay, RecordIsItselfDeterministic) {
  // Guard against the golden record depending on anything besides the seed
  // (wall clock, address ordering, global state left by other tests).
  EXPECT_EQ(build_replay_record().dump(2), build_replay_record().dump(2));
}

}  // namespace
}  // namespace lts
