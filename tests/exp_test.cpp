// Tests for the experiment harness: environment generation, determinism and
// counterfactual properties, the scenario matrix, the collector, and the
// evaluation protocol.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/envgen.hpp"
#include "exp/evaluate.hpp"
#include "exp/figures.hpp"
#include "exp/scenario.hpp"

namespace lts::exp {
namespace {

// ------------------------------------------------------------- scenario ----

TEST(Scenario, MatrixHasSixtyDistinctConfigs) {
  const auto matrix = paper_scenario_matrix();
  ASSERT_EQ(matrix.size(), 60u);
  std::set<std::string> ids;
  int per_app[4] = {0, 0, 0, 0};
  for (const auto& s : matrix) {
    ids.insert(s.id);
    s.config.validate();
    ++per_app[static_cast<int>(s.config.app)];
  }
  EXPECT_EQ(ids.size(), 60u);
  for (const int count : per_app) EXPECT_EQ(count, 15);
}

TEST(Scenario, MatrixCoversSizeAndExecutorRanges) {
  const auto matrix = paper_scenario_matrix();
  std::set<std::int64_t> sizes;
  std::set<int> executors;
  std::set<double> memories;
  for (const auto& s : matrix) {
    sizes.insert(s.config.input_records);
    executors.insert(s.config.executors);
    memories.insert(s.config.executor_memory);
  }
  EXPECT_GE(sizes.size(), 5u);
  EXPECT_GE(executors.size(), 3u);
  EXPECT_GE(memories.size(), 2u);  // tight and roomy allocations
}

TEST(Scenario, SamplingIsDeterministic) {
  const auto matrix = paper_scenario_matrix();
  Rng a(9), b(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sample_scenario(matrix, a).id, sample_scenario(matrix, b).id);
  }
}

// --------------------------------------------------------------- envgen ----

TEST(SimEnv, BuildsPaperTopology) {
  SimEnv env(1);
  EXPECT_EQ(env.node_names().size(), 6u);
  EXPECT_EQ(env.api().nodes().size(), 6u);
  // Allocatable = capacity - reserve.
  EXPECT_DOUBLE_EQ(env.api().nodes()[0].allocatable.cpu, 5.5);
}

TEST(SimEnv, WarmupPopulatesTelemetry) {
  SimEnv env(2);
  env.warmup();
  const auto snapshot = env.snapshot();
  for (const auto& node : snapshot.nodes) {
    EXPECT_GT(node.rtt_mean, 0.0) << node.node;
    EXPECT_GT(node.mem_available, 0.0) << node.node;
  }
}

TEST(SimEnv, SameSeedSameWorld) {
  SimEnv a(42), b(42);
  a.warmup();
  b.warmup();
  EXPECT_EQ(a.num_background_pods(), b.num_background_pods());
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  for (std::size_t i = 0; i < sa.nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa.nodes[i].rtt_mean, sb.nodes[i].rtt_mean);
    EXPECT_DOUBLE_EQ(sa.nodes[i].tx_rate, sb.nodes[i].tx_rate);
    EXPECT_DOUBLE_EQ(sa.nodes[i].cpu_load, sb.nodes[i].cpu_load);
  }
}

TEST(SimEnv, DifferentSeedsDifferentWorlds) {
  SimEnv a(1), b(99);
  a.warmup();
  b.warmup();
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  bool any_diff = false;
  for (std::size_t i = 0; i < sa.nodes.size() && !any_diff; ++i) {
    any_diff = sa.nodes[i].rtt_mean != sb.nodes[i].rtt_mean;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SimEnv, RunJobIsDeterministic) {
  auto run = [] {
    SimEnv env(7);
    env.warmup();
    spark::JobConfig job;
    job.input_records = 400000;
    job.executors = 3;
    return env.run_job(job, 1, 55).duration();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(SimEnv, CounterfactualChangesOnlyPlacement) {
  // Same seed, different driver node: the executor-visible world (bg pods,
  // node heterogeneity) replays identically; only the placement differs.
  spark::JobConfig job;
  job.input_records = 400000;
  job.executors = 3;
  SimEnv a(7), b(7);
  a.warmup();
  b.warmup();
  const auto ra = a.run_job(job, 0, 55);
  const auto rb = b.run_job(job, 5, 55);
  EXPECT_EQ(ra.driver_node, "node-1");
  EXPECT_EQ(rb.driver_node, "node-6");
  EXPECT_NE(ra.duration(), rb.duration());
}

TEST(SimEnv, PodsCleanedUpAfterRun) {
  SimEnv env(3);
  env.warmup();
  spark::JobConfig job;
  job.executors = 3;
  const std::size_t pods_before = env.api().num_pods();
  env.run_job(job, 0, 9);
  EXPECT_EQ(env.api().num_pods(), pods_before);
}

TEST(SimEnv, KubeRankingCoversFeasibleNodes) {
  SimEnv env(3);
  env.warmup();
  spark::JobConfig job;
  const auto ranking = env.kube_ranking(job);
  EXPECT_EQ(ranking.ranking.size(), 6u);
}

TEST(SimEnv, BackgroundCountWithinConfiguredRange) {
  EnvOptions options;
  options.min_background_pods = 2;
  options.max_background_pods = 2;
  SimEnv env(5, options);
  EXPECT_EQ(env.num_background_pods(), 2u);
}

// ------------------------------------------------------------- collector ----

TEST(Collector, ProducesExpectedSampleCount) {
  auto matrix = paper_scenario_matrix();
  matrix.resize(2);
  CollectorOptions options;
  options.repeats = 2;
  options.base_seed = 77;
  std::size_t progress_calls = 0;
  options.progress = [&](std::size_t done, std::size_t total) {
    ++progress_calls;
    EXPECT_LE(done, total);
  };
  const CsvTable log = collect_training_data(matrix, options);
  EXPECT_EQ(log.num_rows(), 2u * 6u * 2u);
  EXPECT_EQ(progress_calls, log.num_rows());
}

TEST(Collector, CoversAllTargetNodes) {
  auto matrix = paper_scenario_matrix();
  matrix.resize(1);
  CollectorOptions options;
  options.repeats = 1;
  const CsvTable log = collect_training_data(matrix, options);
  std::set<std::string> nodes;
  for (std::size_t i = 0; i < log.num_rows(); ++i) {
    nodes.insert(log.cell(i, "node"));
  }
  EXPECT_EQ(nodes.size(), 6u);
}

TEST(Collector, RowsAreTrainable) {
  auto matrix = paper_scenario_matrix();
  matrix.resize(3);
  CollectorOptions options;
  options.repeats = 2;
  const CsvTable log = collect_training_data(matrix, options);
  const auto data = core::Trainer::dataset_from_log(log);
  EXPECT_EQ(data.size(), log.num_rows());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_GT(data.target(i), 1.0);    // durations in seconds
    EXPECT_LT(data.target(i), 600.0);
  }
  const auto model = core::Trainer::train("linear", data);
  EXPECT_TRUE(model->is_fitted());
}

TEST(Collector, SampleSeedsDistinct) {
  CollectorOptions options;
  std::set<std::uint64_t> seeds;
  for (std::size_t s = 0; s < 5; ++s) {
    for (std::size_t n = 0; n < 6; ++n) {
      for (int r = 0; r < 3; ++r) {
        seeds.insert(sample_seed(options, s, n, r));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 5u * 6u * 3u);
}

// -------------------------------------------------------------- evaluate ----

TEST(Evaluate, ProtocolProducesConsistentOutcomes) {
  auto matrix = paper_scenario_matrix();
  matrix.resize(6);
  CollectorOptions collect;
  collect.repeats = 1;
  const CsvTable log = collect_training_data(matrix, collect);
  const auto data = core::Trainer::dataset_from_log(log);
  std::vector<std::pair<std::string, std::shared_ptr<const ml::Regressor>>>
      models;
  models.emplace_back("linear", std::shared_ptr<const ml::Regressor>(
                                    core::Trainer::train("linear", data)));

  EvalOptions eval;
  eval.num_scenarios = 4;
  eval.truth_repeats = 1;
  eval.heuristics = {"least_cpu", "least_rtt"};
  const auto result = evaluate_methods(models, matrix, eval);

  ASSERT_EQ(result.outcomes.size(), 4u);
  for (const auto& outcome : result.outcomes) {
    ASSERT_EQ(outcome.node_durations.size(), 6u);
    for (const double d : outcome.node_durations) EXPECT_GT(d, 0.0);
    // fastest_node really is the argmin.
    for (const double d : outcome.node_durations) {
      EXPECT_LE(outcome.node_durations[outcome.fastest_node], d);
    }
    // Every method produced a complete ranking (permutation of 0..5).
    for (const auto& [method, ranking] : outcome.rankings) {
      std::set<std::size_t> unique(ranking.begin(), ranking.end());
      EXPECT_EQ(unique.size(), 6u) << method;
    }
  }
  // Accuracy rows exist for baselines, heuristics, and the model.
  EXPECT_EQ(result.accuracy.size(), 5u);
  for (const auto& acc : result.accuracy) {
    EXPECT_GE(acc.top1, 0.0);
    EXPECT_LE(acc.top1, 1.0);
    EXPECT_GE(acc.top2, acc.top1);  // Top-2 can only help
    EXPECT_GE(acc.mean_regret, 0.0);
  }
  EXPECT_THROW(result.by_method("nope"), Error);
}

TEST(Evaluate, DeterministicAcrossRuns) {
  auto matrix = paper_scenario_matrix();
  matrix.resize(4);
  CollectorOptions collect;
  collect.repeats = 1;
  const CsvTable log = collect_training_data(matrix, collect);
  const auto data = core::Trainer::dataset_from_log(log);
  auto make_models = [&] {
    std::vector<std::pair<std::string, std::shared_ptr<const ml::Regressor>>>
        models;
    models.emplace_back("linear", std::shared_ptr<const ml::Regressor>(
                                      core::Trainer::train("linear", data)));
    return models;
  };
  EvalOptions eval;
  eval.num_scenarios = 3;
  eval.truth_repeats = 1;
  const auto a = evaluate_methods(make_models(), matrix, eval);
  const auto b = evaluate_methods(make_models(), matrix, eval);
  for (std::size_t i = 0; i < a.accuracy.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.accuracy[i].top1, b.accuracy[i].top1);
    EXPECT_DOUBLE_EQ(a.accuracy[i].mean_regret, b.accuracy[i].mean_regret);
  }
}

// --------------------------------------------------------------- figures ----

TEST(Figures, SortTelemetryShapes) {
  spark::JobConfig sort_config;
  sort_config.input_records = 300000;
  sort_config.executors = 3;
  FigureOptions options;
  options.seed = 118;
  options.runs = 2;
  const auto figures = figure_sort_telemetry(sort_config, options);
  EXPECT_EQ(figures.runs, 2);
  EXPECT_EQ(figures.run_durations.size(), 2u);
  ASSERT_EQ(figures.avg_latency_ms.nodes.size(), 6u);
  ASSERT_EQ(figures.avg_tx_mbps.values.size(), 6u);
  for (const double v : figures.avg_latency_ms.values) EXPECT_GT(v, 0.0);
  // FIU nodes (index 2, 3) should sit above the UCSD/SRI average: they are
  // cross-country from two thirds of their peers.
  const double fiu =
      (figures.avg_latency_ms.values[2] + figures.avg_latency_ms.values[3]) /
      2.0;
  const double rest = (figures.avg_latency_ms.values[0] +
                       figures.avg_latency_ms.values[1] +
                       figures.avg_latency_ms.values[4] +
                       figures.avg_latency_ms.values[5]) /
                      4.0;
  EXPECT_GT(fiu, rest);
}

TEST(Figures, TopologyMatrixSymmetricPositive) {
  const auto matrix = figure_topology(EnvOptions{});
  ASSERT_EQ(matrix.sites.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(matrix.rtt_ms[i][i], 0.0);
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      EXPECT_GT(matrix.rtt_ms[i][j], 1.0);
      EXPECT_NEAR(matrix.rtt_ms[i][j], matrix.rtt_ms[j][i], 1e-6);
    }
  }
}

}  // namespace
}  // namespace lts::exp
