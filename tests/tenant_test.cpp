// Tests for the multi-tenant two-level scheduling layer: weighted DRF
// accounting, offer ordering, guaranteed-quota preemption planning, the
// arrival generators, and the tenant stream runner end to end.
#include <gtest/gtest.h>

#include <algorithm>

#include "exp/scenario.hpp"
#include "tenant/drf.hpp"
#include "tenant/stream.hpp"

namespace lts {
namespace {

constexpr Bytes kGiB = 1024.0 * 1024.0 * 1024.0;

// ------------------------------------------------------------ DRF math ----

tenant::DrfAllocator two_tenant_alloc() {
  return tenant::DrfAllocator(
      {{"a", 1.0, {4.0, 40.0}}, {"b", 2.0, {0.0, 0.0}}}, {10.0, 100.0});
}

TEST(Drf, DominantShareIsWeightedMaxOverResources) {
  auto alloc = two_tenant_alloc();
  alloc.charge("a", "j0", {4.0, 20.0}, tenant::QosClass::kGuaranteed, 0, 0.0);
  // cpu 4/10 = 0.4 dominates memory 20/100 = 0.2; weight 1.
  EXPECT_DOUBLE_EQ(alloc.dominant_share("a"), 0.4);
  alloc.charge("b", "j0", {2.0, 60.0}, tenant::QosClass::kBestEffort, 0, 0.0);
  // memory 60/100 = 0.6 dominates cpu 2/10 = 0.2; weight 2 halves it.
  EXPECT_DOUBLE_EQ(alloc.dominant_share("b"), 0.3);
}

TEST(Drf, ChargeAndReleaseTrackUsage) {
  auto alloc = two_tenant_alloc();
  alloc.charge("a", "j0", {2.0, 10.0}, tenant::QosClass::kGuaranteed, 0, 0.0);
  alloc.charge("a", "j1", {1.0, 5.0}, tenant::QosClass::kBestEffort, -1, 0.0);
  EXPECT_DOUBLE_EQ(alloc.usage("a").cpu, 3.0);
  EXPECT_EQ(alloc.num_jobs("a"), 2u);
  EXPECT_EQ(alloc.job_qos("a", "j1"), tenant::QosClass::kBestEffort);
  alloc.release("a", "j0", 1.0);
  EXPECT_DOUBLE_EQ(alloc.usage("a").cpu, 1.0);
  EXPECT_THROW(alloc.release("a", "j0", 2.0), Error);       // already gone
  EXPECT_THROW(alloc.charge("a", "j1", {}, tenant::QosClass::kBestEffort, 0,
                            2.0),
               Error);                                      // duplicate
  EXPECT_THROW(alloc.usage("nope"), Error);                 // unknown tenant
}

TEST(Drf, ConstructorValidates) {
  using A = tenant::DrfAllocator;
  EXPECT_THROW(A({}, {10.0, 10.0}), Error);
  EXPECT_THROW(A({{"a", 0.0, {}}}, {10.0, 10.0}), Error);   // weight
  EXPECT_THROW(A({{"a", 1.0, {20.0, 0.0}}}, {10.0, 10.0}), Error);  // quota
  EXPECT_THROW(A({{"a", 1.0, {}}, {"a", 1.0, {}}}, {10.0, 10.0}), Error);
}

TEST(Drf, ClassifyAgainstQuota) {
  auto alloc = two_tenant_alloc();
  // Tenant a has quota {4, 40}: a 3-cpu job fits -> Guaranteed.
  EXPECT_EQ(alloc.classify("a", {3.0, 10.0}), tenant::QosClass::kGuaranteed);
  alloc.charge("a", "j0", {3.0, 10.0}, tenant::QosClass::kGuaranteed, 0, 0.0);
  // A second 3-cpu job would exceed the 4-cpu quota -> BestEffort.
  EXPECT_EQ(alloc.classify("a", {3.0, 10.0}), tenant::QosClass::kBestEffort);
  // Tenant b has a zero quota: everything is BestEffort.
  EXPECT_EQ(alloc.classify("b", {0.5, 1.0}), tenant::QosClass::kBestEffort);
}

TEST(Drf, OfferOrderHungriestFirstTiesByName) {
  tenant::DrfAllocator alloc(
      {{"x", 1.0, {}}, {"y", 1.0, {}}, {"z", 1.0, {}}}, {10.0, 100.0});
  alloc.charge("y", "j0", {6.0, 10.0}, tenant::QosClass::kBestEffort, 0, 0.0);
  alloc.charge("z", "j0", {2.0, 10.0}, tenant::QosClass::kBestEffort, 0, 0.0);
  const auto order = alloc.offer_order({"x", "y", "z"});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "x");  // share 0
  EXPECT_EQ(order[1], "z");  // share 0.2
  EXPECT_EQ(order[2], "y");  // share 0.6
  // Equal shares: name order.
  tenant::DrfAllocator tie({{"n2", 1.0, {}}, {"n1", 1.0, {}}}, {10.0, 10.0});
  const auto tied = tie.offer_order({"n2", "n1"});
  EXPECT_EQ(tied.front(), "n1");
}

TEST(Drf, PlanPreemptionLowestPriorityFirstDeterministicTies) {
  tenant::DrfAllocator alloc(
      {{"vip", 1.0, {6.0, 60.0}}, {"b", 1.0, {}}, {"c", 1.0, {}}},
      {10.0, 100.0});
  // b and c are over their (zero) quotas with BestEffort jobs.
  alloc.charge("b", "j0", {2.0, 10.0}, tenant::QosClass::kBestEffort, 0, 0.0);
  alloc.charge("b", "j1", {3.0, 10.0}, tenant::QosClass::kBestEffort, -1, 0.0);
  alloc.charge("c", "j0", {2.0, 10.0}, tenant::QosClass::kBestEffort, 0, 0.0);
  // Deficit of 3 cpu: the priority -1 job goes first and covers it alone.
  auto plan = alloc.plan_preemption("vip", {4.0, 10.0}, {1.0, 70.0});
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].tenant, "b");
  EXPECT_EQ(plan[0].job, "j1");
  // Deficit of 6 cpu: then the priority-0 tie breaks by tenant name (b
  // before c).
  plan = alloc.plan_preemption("vip", {6.0, 10.0}, {0.0, 70.0});
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].job, "j1");
  EXPECT_EQ(plan[1].tenant, "b");
  EXPECT_EQ(plan[1].job, "j0");
  EXPECT_EQ(plan[2].tenant, "c");
}

TEST(Drf, PlanPreemptionProtectsWithinQuotaAndGuaranteed) {
  tenant::DrfAllocator alloc(
      {{"vip", 1.0, {8.0, 80.0}}, {"b", 1.0, {2.0, 20.0}}}, {10.0, 100.0});
  alloc.charge("b", "g", {2.0, 10.0}, tenant::QosClass::kGuaranteed, 0, 0.0);
  alloc.charge("b", "e0", {3.0, 10.0}, tenant::QosClass::kBestEffort, -1, 0.0);
  alloc.charge("b", "e1", {3.0, 10.0}, tenant::QosClass::kBestEffort, -2, 0.0);
  // Evicting e1 (lowest priority) brings b to {5,20}; still over its 2-cpu
  // quota, so e0 is fair game too. The Guaranteed job never is.
  const auto plan = alloc.plan_preemption("vip", {7.0, 10.0}, {1.0, 70.0});
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].job, "e1");
  EXPECT_EQ(plan[1].job, "e0");
  // A tenant back within quota drops out: deficit 1 cpu needs only e1.
  const auto small = alloc.plan_preemption("vip", {2.0, 10.0}, {1.0, 70.0});
  ASSERT_EQ(small.size(), 1u);
  EXPECT_EQ(small[0].job, "e1");
}

TEST(Drf, PlanPreemptionEmptyWhenInsufficient) {
  auto alloc = two_tenant_alloc();
  alloc.charge("b", "j0", {2.0, 10.0}, tenant::QosClass::kBestEffort, 0, 0.0);
  // Even evicting everything cannot cover a 9-cpu deficit: evict nothing.
  EXPECT_TRUE(alloc.plan_preemption("a", {9.0, 10.0}, {0.0, 0.0}).empty());
  // No deficit at all: nothing to evict either.
  EXPECT_TRUE(alloc.plan_preemption("a", {1.0, 10.0}, {5.0, 50.0}).empty());
}

TEST(Drf, ShareIntegralsAndTimeAveragedJain) {
  tenant::DrfAllocator alloc({{"a", 1.0, {}}, {"b", 1.0, {}}},
                             {10.0, 100.0});
  alloc.charge("a", "j", {5.0, 10.0}, tenant::QosClass::kBestEffort, 0, 0.0);
  alloc.charge("b", "j", {5.0, 10.0}, tenant::QosClass::kBestEffort, 0, 10.0);
  alloc.release("a", "j", 20.0);
  alloc.release("b", "j", 20.0);
  alloc.integrate_to(30.0);
  EXPECT_DOUBLE_EQ(alloc.share_integral("a"), 0.5 * 20.0);
  EXPECT_DOUBLE_EQ(alloc.share_integral("b"), 0.5 * 10.0);
  // [0,10): only a busy, Jain = 0.5; [10,20): equal shares, Jain = 1;
  // [20,30): idle, excluded. Average = 0.75.
  EXPECT_DOUBLE_EQ(alloc.time_averaged_jain(), 0.75);
  EXPECT_THROW(alloc.integrate_to(5.0), Error);  // time moved backwards
}

TEST(Drf, JainIndexProperties) {
  EXPECT_DOUBLE_EQ(tenant::jain_index({1.0, 1.0, 1.0}), 1.0);
  EXPECT_NEAR(tenant::jain_index({1.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(tenant::jain_index({0.0, 0.0}), 1.0);
  EXPECT_THROW(tenant::jain_index({}), Error);
  EXPECT_THROW(tenant::jain_index({1.0, -0.5}), Error);
}

// --------------------------------------------------- arrival generators ----

TEST(Arrivals, AllProcessesStrictlyIncreasingAndDeterministic) {
  for (const auto process :
       {tenant::ArrivalProcess::kExponential, tenant::ArrivalProcess::kBursty,
        tenant::ArrivalProcess::kDiurnal}) {
    tenant::ArrivalOptions options;
    options.process = process;
    Rng rng1(42), rng2(42);
    const auto a = tenant::draw_arrivals(20, options, rng1, 40.0);
    const auto b = tenant::draw_arrivals(20, options, rng2, 40.0);
    ASSERT_EQ(a.size(), 20u);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.front(), 40.0);
    for (std::size_t j = 1; j < a.size(); ++j) EXPECT_GT(a[j], a[j - 1]);
  }
}

TEST(Arrivals, BurstyJobsArriveBackToBack) {
  tenant::ArrivalOptions options;
  options.process = tenant::ArrivalProcess::kBursty;
  options.burst_size = 4;
  options.burst_spacing = 2.0;
  Rng rng(7);
  const auto a = tenant::draw_arrivals(8, options, rng, 0.0);
  // Within each burst, consecutive arrivals sit burst_spacing apart.
  for (const std::size_t j : {1u, 2u, 3u, 5u, 6u, 7u}) {
    EXPECT_DOUBLE_EQ(a[j] - a[j - 1], 2.0) << j;
  }
  // The burst gap is a fresh exponential draw, not the spacing.
  EXPECT_GT(a[4] - a[3], 0.0);
}

// ------------------------------------------------------- tenant streams ----

tenant::TenantStreamsOptions small_mix(std::uint64_t seed) {
  tenant::TenantStreamsOptions options;
  options.seed = seed;
  options.tenants.resize(2);
  options.tenants[0].spec.name = "alpha";
  options.tenants[0].policy = exp::StreamPolicy::kKubeDefault;
  options.tenants[0].num_jobs = 3;
  options.tenants[0].arrivals.mean_interarrival = 10.0;
  options.tenants[1].spec.name = "beta";
  options.tenants[1].spec.weight = 2.0;
  options.tenants[1].policy = exp::StreamPolicy::kRandom;
  options.tenants[1].num_jobs = 3;
  options.tenants[1].arrivals.process = tenant::ArrivalProcess::kBursty;
  options.tenants[1].arrivals.mean_interarrival = 15.0;
  options.tenants[1].arrivals.burst_size = 3;
  return options;
}

TEST(TenantStream, RunsAllJobsUnderBothSharingModes) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(8);
  for (const auto sharing :
       {tenant::SharingMode::kFifo, tenant::SharingMode::kDrf}) {
    auto options = small_mix(21);
    options.sharing = sharing;
    const auto result = tenant::run_tenant_streams(matrix, options);
    ASSERT_EQ(result.tenants.size(), 2u);
    for (const auto& tres : result.tenants) {
      ASSERT_EQ(tres.jobs.size(), 3u);
      for (const auto& job : tres.jobs) {
        EXPECT_GT(job.duration, 1.0);
        EXPECT_FALSE(job.driver_node.empty());
        EXPECT_FALSE(job.scenario_id.empty());
        EXPECT_GE(job.submitted, job.planned_arrival);
        EXPECT_DOUBLE_EQ(job.queueing_delay,
                         job.submitted - job.planned_arrival);
      }
      EXPECT_GT(tres.makespan, 0.0);
      EXPECT_GT(tres.share_integral, 0.0);
    }
    EXPECT_GT(result.jain_share, 0.0);
    EXPECT_LE(result.jain_share, 1.0);
    EXPECT_GT(result.offer_rounds, 0);
    const auto summaries = tenant::summarize_tenants(result);
    ASSERT_EQ(summaries.size(), 2u);
    EXPECT_GT(summaries[0].mean_jct, 0.0);
  }
}

TEST(TenantStream, PlanIdenticalAcrossSharingModesAndPolicies) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(8);
  auto fifo = small_mix(33);
  fifo.sharing = tenant::SharingMode::kFifo;
  auto drf = small_mix(33);
  drf.sharing = tenant::SharingMode::kDrf;
  // Also flip a tenant's level-two policy: the plan must not notice.
  drf.tenants[1].policy = exp::StreamPolicy::kKubeDefault;
  const auto a = tenant::run_tenant_streams(matrix, fifo);
  const auto b = tenant::run_tenant_streams(matrix, drf);
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    for (std::size_t j = 0; j < a.tenants[t].jobs.size(); ++j) {
      EXPECT_EQ(a.tenants[t].jobs[j].scenario_id,
                b.tenants[t].jobs[j].scenario_id);
      EXPECT_DOUBLE_EQ(a.tenants[t].jobs[j].planned_arrival,
                       b.tenants[t].jobs[j].planned_arrival);
    }
  }
}

TEST(TenantStream, DeterministicForSeed) {
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(8);
  auto options = small_mix(55);
  options.sharing = tenant::SharingMode::kDrf;
  const auto a = tenant::run_tenant_streams(matrix, options);
  const auto b = tenant::run_tenant_streams(matrix, options);
  EXPECT_DOUBLE_EQ(a.jain_share, b.jain_share);
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    for (std::size_t j = 0; j < a.tenants[t].jobs.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.tenants[t].jobs[j].duration,
                       b.tenants[t].jobs[j].duration);
      EXPECT_DOUBLE_EQ(a.tenants[t].jobs[j].submitted,
                       b.tenants[t].jobs[j].submitted);
    }
  }
}

TEST(TenantStream, ValidatesOptions) {
  const auto matrix = exp::paper_scenario_matrix();
  tenant::TenantStreamsOptions options;
  EXPECT_THROW(tenant::run_tenant_streams(matrix, options), Error);
  options = small_mix(1);
  options.tenants[0].policy = exp::StreamPolicy::kModelRetrain;
  EXPECT_THROW(tenant::run_tenant_streams(matrix, options), Error);
  options = small_mix(1);
  options.tenants[0].policy = exp::StreamPolicy::kModel;  // no model given
  EXPECT_THROW(tenant::run_tenant_streams(matrix, options), Error);
  options = small_mix(1);
  options.tenants[1].spec.name = "alpha";  // duplicate
  EXPECT_THROW(tenant::run_tenant_streams(matrix, options), Error);
}

// A saturating best-effort burst against a guaranteed tenant: DRF must
// preempt the newest hog job (deterministically) and spare the vip, while
// FIFO never preempts at all.
tenant::TenantStreamsOptions preemption_mix(std::uint64_t seed) {
  tenant::TenantStreamsOptions options;
  options.seed = seed;
  options.tenants.resize(2);
  tenant::TenantStreamOptions& hog = options.tenants[0];
  hog.spec.name = "hog";  // zero quota: all jobs BestEffort
  hog.policy = exp::StreamPolicy::kKubeDefault;
  hog.num_jobs = 12;
  hog.arrivals.process = tenant::ArrivalProcess::kBursty;
  hog.arrivals.mean_interarrival = 0.5;
  hog.arrivals.burst_size = 12;
  hog.arrivals.burst_spacing = 0.1;
  tenant::TenantStreamOptions& vip = options.tenants[1];
  vip.spec.name = "vip";
  vip.spec.quota = {9.0, 6.0 * kGiB};
  vip.policy = exp::StreamPolicy::kKubeDefault;
  vip.num_jobs = 2;
  vip.arrivals.mean_interarrival = 30.0;
  return options;
}

std::vector<exp::Scenario> preemption_matrix() {
  // One big-demand scenario for the vip (9 cpu) and one standard hog job
  // (4 cpu): the hog burst saturates the 33-core cluster, so the vip's
  // aggregate deficit is real and preemption must fire.
  exp::Scenario hog_job;
  hog_job.id = "hog-sort";
  hog_job.config.app = spark::AppType::kSort;
  hog_job.config.input_records = 1000000;
  exp::Scenario vip_job = hog_job;
  vip_job.id = "vip-sort";
  vip_job.config.executors = 4;
  vip_job.config.executor_cores = 2.0;
  return {hog_job, vip_job};
}

TEST(TenantStream, GuaranteedQuotaPreemptsBestEffortDeterministically) {
  // Both tenants sample the 2-entry matrix; every job needs at least 4
  // cores, so the 12-job burst saturates the 33-core cluster whatever the
  // draw, and the vip's deficit is an aggregate one — preemption territory.
  const auto matrix = preemption_matrix();
  auto drf = preemption_mix(91);
  drf.sharing = tenant::SharingMode::kDrf;
  const auto with_drf = tenant::run_tenant_streams(matrix, drf);
  EXPECT_GE(with_drf.total_preemptions, 1);
  EXPECT_GE(with_drf.tenants[0].preemptions_suffered, 1);
  EXPECT_EQ(with_drf.tenants[1].preemptions_suffered, 0);
  // The preempted hog jobs still complete (re-queued and restarted).
  for (const auto& job : with_drf.tenants[0].jobs) {
    EXPECT_GT(job.duration, 0.0);
  }

  auto fifo = preemption_mix(91);
  fifo.sharing = tenant::SharingMode::kFifo;
  const auto with_fifo = tenant::run_tenant_streams(matrix, fifo);
  EXPECT_EQ(with_fifo.total_preemptions, 0);
  for (const auto& tres : with_fifo.tenants) {
    EXPECT_EQ(tres.preemptions_suffered, 0);
  }

  // Determinism of the eviction path: an identical DRF run preempts the
  // same jobs the same number of times.
  const auto again = tenant::run_tenant_streams(matrix, drf);
  EXPECT_EQ(with_drf.total_preemptions, again.total_preemptions);
  for (std::size_t j = 0; j < with_drf.tenants[0].jobs.size(); ++j) {
    EXPECT_EQ(with_drf.tenants[0].jobs[j].preemptions,
              again.tenants[0].jobs[j].preemptions);
  }
}

}  // namespace
}  // namespace lts
